"""P_c implication over the model M — decidable, finitely axiomatizable.

Theorem 4.2 / 4.9: over an M schema, implication and finite
implication for P_c coincide, are decidable in cubic time, and are
axiomatized by I_r.  The decision procedure here follows the structure
of the paper's proofs:

1. **Word images** (Lemmas 4.6-4.8): over M every valid path reaches a
   unique node, so a forward constraint ``alpha :: beta => gamma`` is
   equivalent to the word constraint ``alpha.beta => alpha.gamma`` and
   a backward one to ``alpha => alpha.beta.gamma``.
2. **Symmetry** (commutativity): word constraints over M assert node
   *equality*, so the rewrite relation is symmetric.
3. **Decision**: Sigma implies phi iff phi's word image is reachable
   from itself... precisely, iff the two sides of phi's image are
   connected under symmetric prefix rewriting by the images of Sigma —
   a polynomial ``post*`` reachability query.

Two schema-level guards keep this faithful:

* every path mentioned must lie in ``Paths(Delta)`` (the paper assumes
  constraints are defined over Paths(Delta); we raise otherwise);
* a premise whose two image sides have *different* sorts in the
  (deterministic) type graph is unsatisfiable over ``U(Delta)`` —
  a node would need two types — so the premise set has no models and
  implication holds vacuously; this is detected up front and flagged.
  Conversely a type-consistent premise set is always satisfiable over
  ``U(Delta)`` (the quotient of the path unfolding by the induced
  congruence models it), so a type-inconsistent *query* is then simply
  not implied.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.ast import PathConstraint, word
from repro.paths import Path
from repro.reasoning.axioms import IrProof, ProofBuilder, check_proof
from repro.reasoning.result import ImplicationResult
from repro.rewriting.prefix import PrefixRewriteSystem
from repro.truth import Trilean
from repro.types.siggen import SchemaSignature
from repro.types.typesys import Schema


def word_image(phi: PathConstraint) -> tuple[Path, Path]:
    """The word-constraint image of a P_c constraint over M.

    Forward ``alpha :: beta => gamma`` maps to
    ``(alpha.beta, alpha.gamma)`` (Lemma 4.7); backward
    ``alpha :: beta ~> gamma`` maps to ``(alpha,
    alpha.beta.gamma)`` (Lemma 4.8).  Word constraints are their own
    image.
    """
    if phi.is_forward():
        return (phi.prefix.concat(phi.lhs), phi.prefix.concat(phi.rhs))
    return (phi.prefix, phi.prefix.concat(phi.lhs).concat(phi.rhs))


class TypedImplicationDecider:
    """Decides ``Sigma |=_Delta phi`` (== ``Sigma |=_(f,Delta) phi``).

    >>> from repro.types.examples import feature_structure_schema
    >>> from repro.constraints import parse_constraints, parse_constraint
    >>> schema = feature_structure_schema()
    >>> sigma = parse_constraints("sentence.head => subject")
    >>> decider = TypedImplicationDecider(schema, sigma)
    >>> decider.implies(parse_constraint("subject => sentence.head"))
    True
    >>> decider.implies(
    ...     parse_constraint("sentence.head.agreement => subject.agreement"))
    True
    >>> decider.implies(parse_constraint("sentence => subject"))
    False
    """

    def __init__(self, schema: Schema, sigma: Iterable[PathConstraint]) -> None:
        self._schema = schema.require_m()
        self._signature = SchemaSignature(schema)
        self._sigma = tuple(sigma)
        self._image_memo: dict[PathConstraint, tuple[Path, Path]] = {}
        self._images: list[tuple[Path, Path]] = []
        self._unsatisfiable_premises: list[PathConstraint] = []
        for phi in self._sigma:
            left, right = self._validated_image(phi)
            self._images.append((left, right))
            if self._signature.type_of_path(left) != self._signature.type_of_path(
                right
            ):
                self._unsatisfiable_premises.append(phi)
        self._system = PrefixRewriteSystem(self._images, symmetric=True)

    def _validated_image(self, phi: PathConstraint) -> tuple[Path, Path]:
        """Word image, with every constituent path checked against
        Paths(Delta).

        Memoized per constraint: ``implies`` followed by ``prove`` (and
        repeated queries in search loops) validate each fixed prefix
        image exactly once instead of re-walking the type graph.
        """
        cached = self._image_memo.get(phi)
        if cached is not None:
            return cached
        self._signature.require_valid_path(phi.prefix)
        self._signature.require_valid_path(phi.prefix.concat(phi.lhs))
        left, right = word_image(phi)
        self._signature.require_valid_path(left)
        self._signature.require_valid_path(right)
        self._image_memo[phi] = (left, right)
        return (left, right)

    # -- introspection ------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def sigma(self) -> tuple[PathConstraint, ...]:
        return self._sigma

    @property
    def premises_satisfiable(self) -> bool:
        """False when some premise forces a node to carry two sorts
        (then no structure in U(Delta) models Sigma)."""
        return not self._unsatisfiable_premises

    # -- decision --------------------------------------------------------------

    def implies(self, phi: PathConstraint) -> bool:
        left, right = self._validated_image(phi)
        if self._unsatisfiable_premises:
            return True  # vacuous: U(Delta) has no model of Sigma
        if self._signature.type_of_path(left) != self._signature.type_of_path(
            right
        ):
            # Sigma is satisfiable but phi cannot hold in any structure
            # of U(Delta), so it is certainly not implied.
            return False
        return self._system.derives(left, right)

    def prove(self, phi: PathConstraint) -> IrProof | None:
        """An I_r proof of phi from Sigma (Theorem 4.9's completeness,
        made concrete), verified by the independent checker.

        Returns None when phi is not implied, when implication is
        vacuous (unsatisfiable premises have no I_r derivation — the
        axiomatization presumes type-consistent premise sets), or when
        the certificate search exhausts its budget.
        """
        left, right = self._validated_image(phi)
        if self._unsatisfiable_premises:
            return None
        steps = self._system.find_derivation(left, right)
        if steps is None:
            return None

        builder = ProofBuilder(self._sigma)
        # Derive each premise's word image once, by its conversion rule.
        image_lines: dict[int, int] = {}
        for index, premise in enumerate(self._sigma):
            axiom_line = builder.axiom(premise)
            if premise.is_word_constraint():
                image_lines[index] = axiom_line
            elif premise.is_forward():
                image_lines[index] = builder.forward_to_word(axiom_line)
            else:
                image_lines[index] = builder.backward_to_word(axiom_line)

        current = builder.reflexivity(left)
        for step in steps:
            base = image_lines[step.rule_index]
            if step.inverted:
                base = builder.commutativity(base)
            congruent = builder.right_congruence(base, step.suffix)
            current = builder.transitivity(current, congruent)

        # Convert the accumulated word constraint back into phi's form.
        if phi.is_word_constraint():
            final = current
        elif phi.is_forward():
            final = builder.word_to_forward(current, phi)
        else:
            final = builder.word_to_backward(current, phi)
        if builder.line_constraint(final) != phi:
            raise AssertionError("proof does not conclude with the query")
        proof = builder.build()
        check_proof(proof)
        return proof

    def equivalent_paths(
        self, path: Path | str, max_length: int, max_count: int | None = None
    ) -> list[Path]:
        """All valid paths provably reaching the same node as ``path``
        in every model of Sigma over the schema (query optimization
        fodder)."""
        path = Path.coerce(path)
        self._signature.require_valid_path(path)
        return [
            candidate
            for candidate in self._system.derivable_words(
                path, max_length, max_count
            )
            if self._signature.is_valid_path(candidate)
        ]


def implies_typed_m(
    schema: Schema,
    sigma: Iterable[PathConstraint],
    phi: PathConstraint,
    with_proof: bool = False,
) -> ImplicationResult:
    """One-shot convenience wrapper for the typed-M decider."""
    decider = TypedImplicationDecider(schema, sigma)
    answer = decider.implies(phi)
    notes = ["implication and finite implication coincide over M (Thm 4.9)"]
    if not decider.premises_satisfiable:
        notes.append("premises unsatisfiable over U(Delta); vacuously implied")
    proof = decider.prove(phi) if (with_proof and answer) else None
    return ImplicationResult(
        answer=Trilean.of(answer),
        method="typed-M-symmetric-rewriting",
        decidable=True,
        complexity="cubic",
        proof=proof,
        notes=tuple(notes),
    )
