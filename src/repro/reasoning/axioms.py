"""The inference system I_r (Section 4.2) with checkable proof objects.

The eight rules:

====================  =======================================================
Reflexivity           |- alpha => alpha
Transitivity          alpha => beta, beta => gamma |- alpha => gamma
Right-congruence      alpha => beta |- alpha.gamma => beta.gamma
Commutativity         alpha => beta |- beta => alpha
Forward-to-word       (alpha :: beta => gamma) |- alpha.beta => alpha.gamma
Word-to-forward       alpha.beta => alpha.gamma |- (alpha :: beta => gamma)
Backward-to-word      (alpha :: beta ~> gamma) |- alpha => alpha.beta.gamma
Word-to-backward      alpha => alpha.beta.gamma |- (alpha :: beta ~> gamma)
====================  =======================================================

The first three are [AV97]'s complete system for untyped word
constraints.  The full system is sound and complete for P_c over the
model M (Theorem 4.9); commutativity and the word-to-* rules are
*unsound* without the type constraint (they rely on Lemma 4.6's
unique-node property), which is why the proof checker records which
rule subset a proof uses and deciders only accept the sound subset for
their context.

Proof objects are flat line sequences; :func:`check_proof` verifies
each line against its premises without trusting the producer.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.constraints.ast import PathConstraint, word
from repro.errors import ProofError
from repro.paths import Path

#: Rules sound in every context (untyped semantics).
UNIVERSALLY_SOUND_RULES = frozenset(
    {"axiom", "reflexivity", "transitivity", "right-congruence", "forward-to-word"}
)

#: Rules additionally sound over the model M (Lemmas 4.6-4.8).
M_ONLY_RULES = frozenset(
    {"commutativity", "word-to-forward", "backward-to-word", "word-to-backward"}
)

ALL_RULES = UNIVERSALLY_SOUND_RULES | M_ONLY_RULES


@dataclass(frozen=True)
class ProofLine:
    """One derivation step: a constraint, its rule, premise indices."""

    constraint: PathConstraint
    rule: str
    premises: tuple[int, ...] = ()


@dataclass(frozen=True)
class IrProof:
    """A derivation of ``conclusion`` from ``assumptions`` in I_r."""

    assumptions: tuple[PathConstraint, ...]
    lines: tuple[ProofLine, ...]

    @property
    def conclusion(self) -> PathConstraint:
        if not self.lines:
            raise ProofError("empty proof has no conclusion")
        return self.lines[-1].constraint

    def rules_used(self) -> frozenset[str]:
        return frozenset(line.rule for line in self.lines)

    def uses_only_sound_rules(self, context: str = "M") -> bool:
        """Is every rule sound in the given context ("untyped" or "M")?"""
        allowed = (
            ALL_RULES if context == "M" else UNIVERSALLY_SOUND_RULES
        )
        return self.rules_used() <= allowed

    def describe(self) -> str:
        out = []
        for i, line in enumerate(self.lines):
            premises = (
                f" [{', '.join(map(str, line.premises))}]" if line.premises else ""
            )
            out.append(f"{i}: {line.constraint}   ({line.rule}{premises})")
        return "\n".join(out)


def _check_line(
    line: ProofLine,
    derived: list[PathConstraint],
    assumptions: frozenset[PathConstraint],
) -> None:
    """Raise :class:`ProofError` unless the line follows by its rule."""

    def premise(position: int) -> PathConstraint:
        index = line.premises[position]
        if not 0 <= index < len(derived):
            raise ProofError(f"premise index {index} out of range")
        return derived[index]

    def need_premises(count: int) -> None:
        if len(line.premises) != count:
            raise ProofError(
                f"rule {line.rule} needs {count} premises, got "
                f"{len(line.premises)}"
            )

    conclusion = line.constraint
    rule = line.rule

    if rule == "axiom":
        need_premises(0)
        if conclusion not in assumptions:
            raise ProofError(f"{conclusion} is not an assumption")
    elif rule == "reflexivity":
        need_premises(0)
        if not (
            conclusion.is_word_constraint() and conclusion.lhs == conclusion.rhs
        ):
            raise ProofError("reflexivity derives only alpha => alpha")
    elif rule == "transitivity":
        need_premises(2)
        first, second = premise(0), premise(1)
        ok = (
            first.is_word_constraint()
            and second.is_word_constraint()
            and conclusion.is_word_constraint()
            and first.rhs == second.lhs
            and conclusion.lhs == first.lhs
            and conclusion.rhs == second.rhs
        )
        if not ok:
            raise ProofError("transitivity premises do not chain")
    elif rule == "right-congruence":
        need_premises(1)
        base = premise(0)
        ok = base.is_word_constraint() and conclusion.is_word_constraint()
        if ok:
            if not (
                base.lhs.is_prefix_of(conclusion.lhs)
                and base.rhs.is_prefix_of(conclusion.rhs)
            ):
                ok = False
            else:
                suffix_l = conclusion.lhs.strip_prefix(base.lhs)
                suffix_r = conclusion.rhs.strip_prefix(base.rhs)
                ok = suffix_l == suffix_r
        if not ok:
            raise ProofError(
                "right-congruence must append one suffix to both sides"
            )
    elif rule == "commutativity":
        need_premises(1)
        base = premise(0)
        ok = (
            base.is_word_constraint()
            and conclusion.is_word_constraint()
            and conclusion.lhs == base.rhs
            and conclusion.rhs == base.lhs
        )
        if not ok:
            raise ProofError("commutativity swaps a word constraint's sides")
    elif rule == "forward-to-word":
        need_premises(1)
        base = premise(0)
        ok = (
            base.is_forward()
            and conclusion.is_word_constraint()
            and conclusion.lhs == base.prefix.concat(base.lhs)
            and conclusion.rhs == base.prefix.concat(base.rhs)
        )
        if not ok:
            raise ProofError("forward-to-word mismatch")
    elif rule == "word-to-forward":
        need_premises(1)
        base = premise(0)
        ok = (
            base.is_word_constraint()
            and conclusion.is_forward()
            and base.lhs == conclusion.prefix.concat(conclusion.lhs)
            and base.rhs == conclusion.prefix.concat(conclusion.rhs)
        )
        if not ok:
            raise ProofError("word-to-forward mismatch")
    elif rule == "backward-to-word":
        need_premises(1)
        base = premise(0)
        ok = (
            base.is_backward()
            and conclusion.is_word_constraint()
            and conclusion.lhs == base.prefix
            and conclusion.rhs == base.prefix.concat(base.lhs).concat(base.rhs)
        )
        if not ok:
            raise ProofError("backward-to-word mismatch")
    elif rule == "word-to-backward":
        need_premises(1)
        base = premise(0)
        ok = (
            base.is_word_constraint()
            and conclusion.is_backward()
            and base.lhs == conclusion.prefix
            and base.rhs
            == conclusion.prefix.concat(conclusion.lhs).concat(conclusion.rhs)
        )
        if not ok:
            raise ProofError("word-to-backward mismatch")
    else:
        raise ProofError(f"unknown rule {rule!r}")


def check_proof(proof: IrProof) -> PathConstraint:
    """Verify every line; returns the conclusion.

    Raises :class:`ProofError` with the offending line index on any
    failure.  Verification is independent of how the proof was found.
    """
    assumptions = frozenset(proof.assumptions)
    derived: list[PathConstraint] = []
    for index, line in enumerate(proof.lines):
        try:
            _check_line(line, derived, assumptions)
        except ProofError as exc:
            raise ProofError(f"line {index}: {exc}") from exc
        derived.append(line.constraint)
    return proof.conclusion


class ProofBuilder:
    """Incremental construction of an I_r proof with line reuse."""

    def __init__(self, assumptions: Iterable[PathConstraint]) -> None:
        self._assumptions = tuple(assumptions)
        self._lines: list[ProofLine] = []
        self._index: dict[tuple[PathConstraint, str, tuple[int, ...]], int] = {}

    def _emit(
        self, constraint: PathConstraint, rule: str, premises: tuple[int, ...] = ()
    ) -> int:
        key = (constraint, rule, premises)
        if key in self._index:
            return self._index[key]
        self._lines.append(ProofLine(constraint, rule, premises))
        index = len(self._lines) - 1
        self._index[key] = index
        return index

    def axiom(self, constraint: PathConstraint) -> int:
        if constraint not in self._assumptions:
            raise ProofError(f"{constraint} is not an assumption")
        return self._emit(constraint, "axiom")

    def reflexivity(self, alpha: Path) -> int:
        return self._emit(word(alpha, alpha), "reflexivity")

    def transitivity(self, first: int, second: int) -> int:
        a = self._lines[first].constraint
        b = self._lines[second].constraint
        return self._emit(word(a.lhs, b.rhs), "transitivity", (first, second))

    def right_congruence(self, base: int, suffix: Path) -> int:
        constraint = self._lines[base].constraint
        if suffix.is_empty():
            return base
        return self._emit(
            word(constraint.lhs.concat(suffix), constraint.rhs.concat(suffix)),
            "right-congruence",
            (base,),
        )

    def commutativity(self, base: int) -> int:
        constraint = self._lines[base].constraint
        return self._emit(
            word(constraint.rhs, constraint.lhs), "commutativity", (base,)
        )

    def forward_to_word(self, base: int) -> int:
        phi = self._lines[base].constraint
        return self._emit(
            word(phi.prefix.concat(phi.lhs), phi.prefix.concat(phi.rhs)),
            "forward-to-word",
            (base,),
        )

    def backward_to_word(self, base: int) -> int:
        phi = self._lines[base].constraint
        return self._emit(
            word(phi.prefix, phi.prefix.concat(phi.lhs).concat(phi.rhs)),
            "backward-to-word",
            (base,),
        )

    def word_to_forward(self, base: int, target: PathConstraint) -> int:
        return self._emit(target, "word-to-forward", (base,))

    def word_to_backward(self, base: int, target: PathConstraint) -> int:
        return self._emit(target, "word-to-backward", (base,))

    def line_constraint(self, index: int) -> PathConstraint:
        return self._lines[index].constraint

    def build(self) -> IrProof:
        return IrProof(assumptions=self._assumptions, lines=tuple(self._lines))
