"""Deterministic fault injection for the supervised solver runtime.

The fault-tolerance machinery of :mod:`repro.reasoning.runtime` is
only trustworthy if its failure paths are *exercised*, not just
written.  This module makes worker death, payload corruption, shard
delays and mid-task exceptions reproducible on demand:

* a :class:`FaultPlan` maps every *task ordinal* (the deterministic
  submission counter of a :class:`~repro.reasoning.runtime
  .WorkerSupervisor`) to a :class:`FaultAction`;
* targeted plans pin one fault to one ordinal (``kill:3``,
  ``raise:0``, ``delay:2:0.5``, ``corrupt:1``; comma-separated specs
  compose);
* rate plans (``rate:0.3`` or ``rate:0.3:seed``) draw a fault kind
  per ordinal from a seeded PRNG, for fuzzing the fault paths at
  volume;
* :func:`invoke` is the worker-side entry point — the supervisor
  submits it instead of the raw task function, so the action fires
  inside the worker process exactly where a real fault would.

Injected faults fire on a task's *first* attempt only (the supervisor
retries with ``Action.NONE``), modelling transient infrastructure
faults; the acceptance property is that no injected fault may flip a
definite verdict — retried/degraded execution either recovers the
same answer or honestly degrades to UNKNOWN.

Every fault kind:

==========  ============================================================
``kill``    the worker calls ``os._exit(1)`` — the executor observes an
            abrupt worker death and breaks the pool (in-process runs
            downgrade this to a raise: killing the caller would defeat
            the degraded mode the injection is meant to test)
``raise``   :class:`~repro.errors.InjectedFault` is raised mid-task
``delay``   the task sleeps ``param`` seconds before running — long
            enough delays push a shard past the shared deadline
``corrupt`` the submitted payload carries a :class:`CorruptPayload`
            whose ``__reduce__`` raises, so pickling fails in the
            executor's feeder and the future errors without the task
            ever reaching a worker (a no-op in-process: nothing is
            pickled there)
``hang``    the task wedges — it sleeps in small increments, ignoring
            deadlines and cooperative cancellation, forever
            (``hang:ORD``) or for ``param`` seconds (``hang:ORD:SECS``)
            before running; this models the undecidability-induced
            non-returning solve the watchdog layer exists for
``oom``     the task raises :class:`MemoryError`, exactly what a worker
            whose ``RLIMIT_AS`` ceiling is hit observes — exercising
            the OOM → :class:`~repro.errors.WorkerCrashError` mapping
==========  ============================================================

Rate plans (``rate:R``) draw only from the original four transient
kinds; ``hang``/``oom`` fire only when targeted explicitly, because a
randomly drawn infinite hang would wedge an entire fuzz sweep rather
than test anything.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass

from repro.errors import InjectedFault

#: Environment variable consulted by :func:`plan_from_env`; holds a
#: spec string in the :meth:`FaultPlan.from_spec` syntax.
ENV_VAR = "REPRO_INJECT"

_KINDS = ("kill", "raise", "delay", "corrupt", "hang", "oom")

#: Kinds a rate plan may draw.  Excludes ``hang`` (would wedge whole
#: sweeps) and ``oom`` (targeted ceiling tests only).
_RATE_KINDS = ("kill", "raise", "delay", "corrupt")

#: Default sleep for ``delay`` faults drawn by rate plans (seconds).
_RATE_DELAY = 0.02


@dataclass(frozen=True)
class FaultAction:
    """What (if anything) to do to one task attempt."""

    kind: str = "none"
    param: float = 0.0

    @property
    def fires(self) -> bool:
        return self.kind != "none"

    def describe(self) -> str:
        if self.kind == "delay":
            return f"delay:{self.param}"
        return self.kind


#: The shared no-op action.
NO_FAULT = FaultAction()


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic map from task ordinal to fault action.

    Immutable and picklable — but note the plan is consulted in the
    *submitting* process (the supervisor), never in workers, so the
    injection decision for a task is fixed before the task crosses
    the process boundary.
    """

    spec: str = ""
    targeted: tuple[tuple[int, FaultAction], ...] = ()
    rate: float = 0.0
    seed: int = 0

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``kill:3,delay:2:0.5,...`` or ``rate:0.3[:seed]``.

        Raises :class:`ValueError` on malformed specs — injection is a
        testing instrument; silently ignoring a typo would mean
        silently not testing what the caller asked for.
        """
        spec = spec.strip()
        if not spec:
            return cls()
        targeted: list[tuple[int, FaultAction]] = []
        rate = 0.0
        seed = 0
        for part in spec.split(","):
            fields = [f.strip() for f in part.split(":")]
            kind = fields[0]
            if kind == "rate":
                if len(fields) not in (2, 3):
                    raise ValueError(f"bad rate spec {part!r}")
                rate = float(fields[1])
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(f"inject rate {rate} outside [0, 1]")
                seed = int(fields[2]) if len(fields) == 3 else 0
                continue
            if kind not in _KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; have {_KINDS + ('rate',)}"
                )
            if kind == "delay":
                if len(fields) != 3:
                    raise ValueError(
                        f"delay spec {part!r} needs ordinal and seconds"
                    )
                targeted.append(
                    (int(fields[1]), FaultAction("delay", float(fields[2])))
                )
                continue
            if kind == "hang":
                # hang:ORD wedges forever; hang:ORD:SECS wedges that
                # long (ignoring cancellation) and then runs the task.
                if len(fields) not in (2, 3):
                    raise ValueError(
                        f"hang spec {part!r} needs an ordinal "
                        "and optional seconds"
                    )
                secs = float(fields[2]) if len(fields) == 3 else 0.0
                targeted.append((int(fields[1]), FaultAction("hang", secs)))
                continue
            if len(fields) != 2:
                raise ValueError(f"fault spec {part!r} needs a task ordinal")
            targeted.append((int(fields[1]), FaultAction(kind)))
        return cls(
            spec=spec, targeted=tuple(targeted), rate=rate, seed=seed
        )

    @classmethod
    def at_rate(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A pure rate plan (the ``repro fuzz --inject-rate`` mode)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"inject rate {rate} outside [0, 1]")
        return cls(spec=f"rate:{rate}:{seed}", rate=rate, seed=seed)

    @property
    def active(self) -> bool:
        return bool(self.targeted) or self.rate > 0.0

    def action_for(self, ordinal: int) -> FaultAction:
        """The (deterministic) action for the task at ``ordinal``."""
        for target, action in self.targeted:
            if target == ordinal:
                return action
        if self.rate > 0.0:
            rng = random.Random(self.seed * 0x9E3779B1 + ordinal)
            if rng.random() < self.rate:
                kind = rng.choice(_RATE_KINDS)
                return FaultAction(
                    kind, _RATE_DELAY if kind == "delay" else 0.0
                )
        return NO_FAULT

    def describe(self) -> str:
        return self.spec or "none"


def plan_from_env() -> FaultPlan:
    """The ambient plan from ``$REPRO_INJECT`` (empty plan if unset)."""
    return FaultPlan.from_spec(os.environ.get(ENV_VAR, ""))


class CorruptPayload:
    """An object that cannot cross a process boundary.

    ``__reduce__`` raising makes the executor's pickling of the work
    item fail, which is exactly how a genuinely unpicklable result of
    refactoring (or a corrupted shared buffer) presents: the future
    errors, no worker ever runs the task.
    """

    def __reduce__(self):
        raise InjectedFault("injected pickle corruption")


def invoke(action_kind: str, param: float, in_process: bool, fn, args,
           _poison: object = None):
    """Run ``fn(*args)`` after firing the injected action, if any.

    The supervisor submits *this* function (with the raw task function
    and argument tuple as data) so that ``kill``/``raise``/``delay``
    fire inside the worker process.  ``_poison`` carries the
    :class:`CorruptPayload` for ``corrupt`` actions; it is never
    touched — its only job is to blow up in the pickler.
    """
    if action_kind == "kill":
        if in_process:
            raise InjectedFault(
                "injected worker kill (downgraded to a raise in-process)"
            )
        os._exit(1)
    elif action_kind == "raise":
        raise InjectedFault("injected mid-task fault")
    elif action_kind == "delay":
        time.sleep(param)
    elif action_kind == "hang":
        # Sleep in small increments so a *bounded* hang wakes up on
        # time, but never consult any deadline or cancel flag: a hang
        # is precisely a task that stopped cooperating.
        end = None if param <= 0 else time.monotonic() + param
        while end is None or time.monotonic() < end:
            time.sleep(0.05)
    elif action_kind == "oom":
        raise MemoryError("injected worker memory-ceiling hit")
    return fn(*args)
