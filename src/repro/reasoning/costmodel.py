"""Cost-model dispatch for the portfolio's counter-model scans.

The process-pool portfolio of PR 2 could *lose* to the sequential
pipeline: on a small instance, cold pool spawn plus per-shard pickling
dominates the scan itself (measured on the bench instance:
``jobs=1`` 0.21s vs ``jobs=2`` 0.41s on one CPU).  The fix is to stop
treating ``jobs`` as a command and start treating it as a *cap*: the
closed-form ``2^(L*n^2)`` size of a :class:`~repro.reasoning.models
.CodeSpace` makes the scan work predictable before any process is
spawned, so execution strategy is a per-solve decision, the same way
query-containment procedures price their search space before choosing
a strategy.

Three strategies (:class:`ExecMode`):

``inline``
    One in-process scan per enumeration level — zero dispatch
    overhead; right for small spaces.
``sharded``
    In-process, but the level is cut into bounded chunks that run as
    individual supervised tasks — same total work, bounded per-task
    latency, per-chunk calibration feedback and budget checks.
``pool``
    The supervised process pool, with shared-memory shard transport
    and a warm persistent pool (see :mod:`repro.reasoning.shm` and
    :mod:`repro.reasoning.runtime`).

:func:`choose_execution` picks between them from the estimated scan
seconds (work units over a calibrated throughput), the number of CPUs
actually available to this process, and the measured fixed costs of
pool execution.  The decision is returned as an
:class:`ExecutionDecision` and recorded on every
:class:`~repro.reasoning.result.ImplicationResult` so benchmarks and
users can audit which strategy a solve used.

Measured constants (this repository's bench box, Python 3.11):

* cold pool spawn + first dispatch: ~0.05s for 2 workers, growing
  roughly linearly with worker count;
* warm pool dispatch: ~0.6ms per task;
* untyped canonical scan: ~170k codes/s;
* typed instance scan: ~4.5k instances/s on the reference evaluator
  (the compiled fast path is ~3x that; calibration converges onto
  whichever evaluator actually runs).

Throughputs are calibrated online: every finished scan feeds an EWMA,
so the thresholds track the machine the solver is actually running on.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass

__all__ = [
    "ExecMode",
    "ExecutionDecision",
    "available_cpus",
    "calibration",
    "choose_execution",
    "estimate_untyped_codes",
    "normalize_jobs",
    "observe_typed_scan",
    "observe_untyped_scan",
    "reset_calibration",
    "validate_jobs",
    "validate_max_respawns",
]


class ExecMode(enum.Enum):
    """How a portfolio solve executes its counter-model scan."""

    INLINE = "inline"
    SHARDED = "sharded"
    POOL = "pool"


#: Cold ProcessPoolExecutor spawn + first dispatch, per worker pair
#: (measured: 0.048s for 2 workers on the bench box).
COLD_SPAWN_SECONDS = 0.05
#: Extra spawn cost per additional worker beyond the first two.
COLD_SPAWN_PER_WORKER = 0.01
#: Dispatch latency onto an already-warm pool (measured: ~0.6ms).
WARM_DISPATCH_SECONDS = 0.002
#: The pool must promise at least this multiple of its own overhead in
#: saved wall-clock before it is chosen — the "never lose" margin.
POOL_GAIN_FACTOR = 2.0
#: Untyped spaces at or below this many codes run as one inline scan;
#: larger spaces are chunked (bounded latency, per-chunk calibration).
INLINE_MAX_CODES = 1 << 16
#: Fraction of a typed scan that actually parallelizes under stride
#: sharding: every stride shard re-enumerates the full instance
#: stream, so only the per-instance conversion + check spreads across
#: workers (measured: enumeration is ~half the reference scan cost).
TYPED_PARALLEL_FRACTION = 0.5

#: Calibration defaults (work units per second), see module docstring.
DEFAULT_UNTYPED_RATE = 170_000.0
DEFAULT_TYPED_RATE = 4_500.0
_EWMA_ALPHA = 0.3

#: Estimates are capped here — beyond this any strategy is hopeless
#: anyway and exact bigint arithmetic on 2^(L*n^2) buys nothing.
_WORK_CAP = 1 << 62


@dataclass
class _Calibration:
    untyped_rate: float = DEFAULT_UNTYPED_RATE
    typed_rate: float = DEFAULT_TYPED_RATE
    untyped_samples: int = 0
    typed_samples: int = 0


_CAL = _Calibration()


def calibration() -> _Calibration:
    """The live throughput calibration (shared, process-wide)."""
    return _CAL


def reset_calibration() -> None:
    """Restore the measured defaults (used by tests)."""
    global _CAL
    _CAL = _Calibration()


def _ewma(current: float, sample: float) -> float:
    return (1.0 - _EWMA_ALPHA) * current + _EWMA_ALPHA * sample


def observe_untyped_scan(codes: int, seconds: float) -> None:
    """Feed one finished canonical scan into the calibration."""
    if codes <= 0 or seconds <= 1e-4:
        return
    _CAL.untyped_rate = _ewma(_CAL.untyped_rate, codes / seconds)
    _CAL.untyped_samples += 1


def observe_typed_scan(instances: int, seconds: float) -> None:
    """Feed one finished typed instance scan into the calibration."""
    if instances <= 0 or seconds <= 1e-4:
        return
    _CAL.typed_rate = _ewma(_CAL.typed_rate, instances / seconds)
    _CAL.typed_samples += 1


def available_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def estimate_untyped_codes(label_count: int, max_nodes: int) -> int:
    """Total codes across levels ``1..max_nodes``: sum of 2^(L*n^2).

    The closed form the cost model prices a solve with — no
    :class:`~repro.reasoning.models.CodeSpace` (and no permutation
    tables) is built just to read its size.  Capped at ``2^62``.
    """
    if label_count < 0 or max_nodes < 0:
        raise ValueError("label_count and max_nodes must be >= 0")
    total = 0
    for n in range(1, max_nodes + 1):
        bits = label_count * n * n
        if bits >= 62:
            return _WORK_CAP
        total += 1 << bits
        if total >= _WORK_CAP:
            return _WORK_CAP
    return total


# ---------------------------------------------------------------------------
# jobs / max_respawns validation (dispatcher satellite).
# ---------------------------------------------------------------------------


def validate_jobs(jobs: object) -> int | str:
    """Validate a ``jobs`` request: a positive int or ``"auto"``.

    Returns the validated value unchanged; raises a clear
    :class:`ValueError` on anything else (``0``, negatives, floats,
    bools, arbitrary strings).
    """
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            return "auto"
        raise ValueError(
            f"jobs must be a positive integer or 'auto', got {jobs!r}"
        )
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(
            f"jobs must be a positive integer or 'auto', got {jobs!r}"
        )
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def normalize_jobs(jobs: object) -> int:
    """Validate and resolve ``jobs``: ``"auto"`` becomes the CPU count."""
    validated = validate_jobs(jobs)
    if validated == "auto":
        return available_cpus()
    return validated  # type: ignore[return-value]


def validate_max_respawns(max_respawns: object) -> int:
    """Validate ``max_respawns``: a non-negative int."""
    if isinstance(max_respawns, bool) or not isinstance(max_respawns, int):
        raise ValueError(
            f"max_respawns must be a non-negative integer, "
            f"got {max_respawns!r}"
        )
    if max_respawns < 0:
        raise ValueError(
            f"max_respawns must be >= 0, got {max_respawns}"
        )
    return max_respawns


# ---------------------------------------------------------------------------
# The decision.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutionDecision:
    """One solve's execution strategy, with the numbers behind it."""

    mode: ExecMode
    #: effective worker count (1 for the in-process modes).
    jobs: int
    #: codes (untyped) or instances (typed) the scan may have to visit.
    estimated_work: int
    #: ``estimated_work`` over the calibrated throughput.
    estimated_seconds: float
    cpus: int
    #: a warm pool was available when the decision was made.
    warm: bool
    reason: str
    forced: bool = False

    def describe(self) -> str:
        parts = [f"{self.mode.value} jobs={self.jobs}"]
        parts.append(f"~{self.estimated_work} work units")
        parts.append(f"est {self.estimated_seconds:.3f}s")
        parts.append(f"{self.cpus} cpu(s)")
        if self.warm:
            parts.append("warm pool")
        if self.forced:
            parts.append("forced")
        parts.append(self.reason)
        return ", ".join(parts)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode.value,
            "jobs": self.jobs,
            "estimated_work": self.estimated_work,
            "estimated_seconds": round(self.estimated_seconds, 6),
            "cpus": self.cpus,
            "warm": self.warm,
            "forced": self.forced,
            "reason": self.reason,
        }


def _pool_overhead(jobs: int, warm: bool) -> float:
    if warm:
        return WARM_DISPATCH_SECONDS * jobs
    return COLD_SPAWN_SECONDS + COLD_SPAWN_PER_WORKER * max(0, jobs - 2)


def choose_execution(
    *,
    kind: str,
    work_units: int,
    jobs: int,
    warm_available: bool = False,
    cpus: int | None = None,
    forced: ExecMode | None = None,
) -> ExecutionDecision:
    """Pick the execution strategy for one counter-model scan.

    ``kind`` is ``"untyped"`` (canonical code scan) or ``"typed"``
    (the ``U_f(Delta)`` instance stream); ``work_units`` the size of
    the scan in that kind's units; ``jobs`` the caller's worker *cap*
    (already resolved from ``"auto"``).  ``forced`` bypasses the model
    (used by tests and benchmarks to pin a strategy); a forced
    ``pool`` still requires ``jobs >= 2``.

    Guarantee this function exists for: the pool is only chosen when
    the parallelizable fraction of the estimated scan time exceeds
    :data:`POOL_GAIN_FACTOR` times the pool's own fixed overhead —
    so ``jobs>1`` can no longer lose to ``jobs=1`` by paying for
    processes the scan cannot amortize.
    """
    if kind not in ("untyped", "typed"):
        raise ValueError(f"unknown scan kind {kind!r}")
    cpus = available_cpus() if cpus is None else max(1, cpus)
    work_units = max(0, min(work_units, _WORK_CAP))
    rate = _CAL.untyped_rate if kind == "untyped" else _CAL.typed_rate
    est_seconds = work_units / rate

    if forced is not None:
        if forced is ExecMode.POOL and jobs < 2:
            raise ValueError("execution='pool' requires jobs >= 2")
        eff = jobs if forced is ExecMode.POOL else 1
        return ExecutionDecision(
            mode=forced,
            jobs=eff,
            estimated_work=work_units,
            estimated_seconds=est_seconds,
            cpus=cpus,
            warm=warm_available,
            reason="mode pinned by caller",
            forced=True,
        )

    parallelism = min(jobs, cpus)
    parallel_fraction = (
        1.0 if kind == "untyped" else TYPED_PARALLEL_FRACTION
    )
    if parallelism >= 2:
        overhead = _pool_overhead(parallelism, warm_available)
        gain = est_seconds * parallel_fraction * (1.0 - 1.0 / parallelism)
        if gain > POOL_GAIN_FACTOR * overhead:
            return ExecutionDecision(
                mode=ExecMode.POOL,
                jobs=parallelism,
                estimated_work=work_units,
                estimated_seconds=est_seconds,
                cpus=cpus,
                warm=warm_available,
                reason=(
                    f"parallel gain {gain:.3f}s > "
                    f"{POOL_GAIN_FACTOR:g}x overhead {overhead:.3f}s"
                ),
            )
        reason = (
            f"pool gain {gain:.3f}s below {POOL_GAIN_FACTOR:g}x "
            f"overhead {overhead:.3f}s"
        )
    else:
        reason = (
            f"no parallelism (jobs cap {jobs}, {cpus} cpu(s))"
            if jobs > 1
            else "sequential requested"
        )

    if kind == "untyped" and work_units > INLINE_MAX_CODES:
        return ExecutionDecision(
            mode=ExecMode.SHARDED,
            jobs=1,
            estimated_work=work_units,
            estimated_seconds=est_seconds,
            cpus=cpus,
            warm=warm_available,
            reason=f"{reason}; space > {INLINE_MAX_CODES} codes, chunked",
        )
    return ExecutionDecision(
        mode=ExecMode.INLINE,
        jobs=1,
        estimated_work=work_units,
        estimated_seconds=est_seconds,
        cpus=cpus,
        warm=warm_available,
        reason=reason,
    )
