"""Shared-memory shard transport for the pooled canonical scan.

Above the cost-model threshold the portfolio stops pickling shard
payloads per task.  The parent packs everything a shard needs — the
label alphabet, the compiled constraint programs (label-index words,
the input of the bitmask evaluator in :mod:`repro.reasoning.models`)
and every level's canonical-code ranges — once into a
:class:`multiprocessing.shared_memory.SharedMemory` segment.  A pool
task then pickles only ``(arena name, level index, shard index)``:
constant-size arguments however many shards or constraints there are,
and workers compile the constraint programs once per arena instead of
once per task.

Layout (little-endian)::

    magic   4 bytes  b"RPA1"
    width   u8       bytes per packed integer (8, or 16 for spaces
                     whose code bounds exceed 64 bits)
    pad     3 bytes
    hlen    u32      JSON header length
    header  hlen     JSON: labels, constraint programs, level table
    pad              to a multiple of ``width``
    ints    n*width  packed range bounds, (start, stop) per shard

Range bounds are read through ``numpy.frombuffer`` views when numpy is
importable and the bounds fit ``uint64``; otherwise (or for 16-byte
bounds) through a plain ``memoryview`` + ``int.from_bytes`` fallback,
so the transport has no hard numpy dependency.

A second, one-byte segment class — :class:`CancelFlag` — gives the
parent a cooperative cancellation signal: scans and the chase poll it
between chunks, so a straggler task on a warm pool winds down quickly
after the race is decided instead of occupying a worker into the next
``solve()``.

Cleanup contract (the part PR 5's fault-tolerance guarantees depend
on): segments are *parent-owned*.  The parent unlinks in a
``finally`` around the race — worker crash and pool respawn never
orphan a segment because workers only ever attach.  A process-wide
registry plus an ``atexit`` hook reclaims anything still owned at
interpreter exit; see the resource-tracker note below for why attach
never re-registers cleanup.
"""

from __future__ import annotations

import atexit
import contextlib
import itertools
import json
import os
import struct
from multiprocessing import shared_memory
from typing import Any

try:  # numpy views when available; pure-python fallback otherwise.
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in this env
    _np = None

__all__ = ["CancelFlag", "ScanArena", "active_owned_segments"]

_MAGIC = b"RPA1"
_SEGMENT_COUNTER = itertools.count()

#: name -> SharedMemory for every segment this process created and
#: still owns (not yet unlinked).  The atexit hook drains it.
_OWNED: dict[str, shared_memory.SharedMemory] = {}


def _new_name(prefix: str) -> str:
    return f"{prefix}-{os.getpid()}-{next(_SEGMENT_COUNTER)}"


def _own(shm: shared_memory.SharedMemory) -> None:
    _OWNED[shm.name] = shm


def _disown_and_unlink(name: str) -> None:
    shm = _OWNED.pop(name, None)
    if shm is None:
        return
    try:
        shm.close()
    except Exception:  # pragma: no cover - defensive
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
    except Exception:  # pragma: no cover - defensive
        pass


def active_owned_segments() -> tuple[str, ...]:
    """Names of segments this process still owns (leak-test hook)."""
    return tuple(sorted(_OWNED))


@atexit.register
def _cleanup_owned_segments() -> None:  # pragma: no cover - exit path
    for name in list(_OWNED):
        _disown_and_unlink(name)


# Note on the resource tracker: ``SharedMemory(name=...)`` registers
# unconditionally on attach, a known CPython sharp edge (3.13 grew
# ``track=False`` for exactly this).  On POSIX the tracker process is
# shared by the whole tree and its cache is a *set*, so attach-side
# registrations race the parent's unlink in both directions: an
# explicit attach-side ``unregister`` can double-unregister (KeyError
# traceback in the tracker), while leaving the registration in place
# lets a late-arriving attach-register resurrect an already-unlinked
# name (ENOENT warning at interpreter exit).  The only
# order-insensitive protocol on 3.11 is for attaches to never talk to
# the tracker at all: ownership is strictly create-side, the parent's
# single registration is cancelled by its single ``unlink()``, and the
# tracker still reclaims the segment if the parent dies hard.


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment without a resource-tracker registration."""
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class CancelFlag:
    """A one-byte shared cancellation flag (parent-owned)."""

    def __init__(
        self, shm: shared_memory.SharedMemory, owner: bool
    ) -> None:
        self._shm = shm
        self._owner = owner

    @classmethod
    def create(cls) -> "CancelFlag":
        shm = shared_memory.SharedMemory(
            name=_new_name("repro-cancel"), create=True, size=1
        )
        shm.buf[0] = 0
        _own(shm)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "CancelFlag":
        return cls(_attach_untracked(name), owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def set(self) -> None:
        with contextlib.suppress(Exception):
            self._shm.buf[0] = 1

    @property
    def is_set(self) -> bool:
        # A released (closed/unlinked) flag reads as cancelled: the
        # owner tearing the flag down mid-poll is itself a "stop now"
        # signal, and abandoned solver threads may legitimately poll
        # after the daemon reclaimed the segment.
        try:
            return self._shm.buf[0] != 0
        except Exception:
            return True

    def close(self) -> None:
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - defensive
            pass

    def release(self) -> None:
        """Owner-side teardown: close and unlink."""
        if self._owner:
            _disown_and_unlink(self._shm.name)
        else:
            self.close()


class ScanArena:
    """The packed scan payload, shared read-only with pool workers."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        owner: bool,
        header: dict[str, Any],
        width: int,
        ints_offset: int,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self._header = header
        self._width = width
        self._ints_offset = ints_offset
        count = int(header["int_count"])
        if width == 8 and _np is not None:
            self._ints = _np.frombuffer(
                shm.buf, dtype="<u8", count=count, offset=ints_offset
            )
        else:
            self._ints = None  # memoryview fallback via _read_int

    # -- construction -------------------------------------------------

    @classmethod
    def create(
        cls,
        labels: tuple[str, ...],
        sigma_programs: list[dict],
        phi_program: dict,
        levels: list[tuple[int, list[tuple[int, int]]]],
    ) -> "ScanArena":
        """Pack and publish the payload (parent side).

        ``levels`` is ``[(node_count, [(start, stop), ...]), ...]`` in
        scan order; constraint programs are the JSON form of
        :class:`~repro.reasoning.models._CompiledConstraint` (small
        label-index words — the "constraint bitmasks" of the compiled
        evaluator's input language).
        """
        bounds: list[int] = []
        level_table = []
        for node_count, ranges in levels:
            level_table.append(
                {
                    "n": node_count,
                    "first": len(bounds) // 2,
                    "shards": len(ranges),
                }
            )
            for start, stop in ranges:
                bounds.extend((start, stop))
        width = 8
        if bounds and max(bounds) >= 1 << 64:
            width = 16
        header = {
            "labels": list(labels),
            "sigma": sigma_programs,
            "phi": phi_program,
            "levels": level_table,
            "int_count": len(bounds),
        }
        header_blob = json.dumps(header, separators=(",", ":")).encode()
        prefix_len = 4 + 1 + 3 + 4 + len(header_blob)
        ints_offset = -(-prefix_len // width) * width  # round up
        size = max(1, ints_offset + width * len(bounds))
        shm = shared_memory.SharedMemory(
            name=_new_name("repro-scan"), create=True, size=size
        )
        buf = shm.buf
        buf[0:4] = _MAGIC
        buf[4] = width
        struct.pack_into("<I", buf, 8, len(header_blob))
        buf[12 : 12 + len(header_blob)] = header_blob
        for i, value in enumerate(bounds):
            offset = ints_offset + i * width
            buf[offset : offset + width] = value.to_bytes(width, "little")
        _own(shm)
        return cls(shm, True, header, width, ints_offset)

    @classmethod
    def attach(cls, name: str) -> "ScanArena":
        """Open an existing arena (worker side)."""
        shm = _attach_untracked(name)
        buf = shm.buf
        if bytes(buf[0:4]) != _MAGIC:
            shm.close()
            raise ValueError(f"segment {name!r} is not a scan arena")
        width = buf[4]
        (hlen,) = struct.unpack_from("<I", buf, 8)
        header = json.loads(bytes(buf[12 : 12 + hlen]).decode())
        ints_offset = -(-(12 + hlen) // width) * width
        return cls(shm, False, header, width, ints_offset)

    # -- payload ------------------------------------------------------

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(self._header["labels"])

    @property
    def sigma_programs(self) -> list[dict]:
        return self._header["sigma"]

    @property
    def phi_program(self) -> dict:
        return self._header["phi"]

    @property
    def level_count(self) -> int:
        return len(self._header["levels"])

    def level(self, level_index: int) -> tuple[int, int]:
        """``(node_count, shard_count)`` for one enumeration level."""
        entry = self._header["levels"][level_index]
        return entry["n"], entry["shards"]

    def _read_int(self, index: int) -> int:
        if self._ints is not None:
            return int(self._ints[index])
        offset = self._ints_offset + index * self._width
        return int.from_bytes(
            self._shm.buf[offset : offset + self._width], "little"
        )

    def range_for(
        self, level_index: int, shard_index: int
    ) -> tuple[int, int, int]:
        """``(node_count, start, stop)`` for one shard of one level."""
        entry = self._header["levels"][level_index]
        if not 0 <= shard_index < entry["shards"]:
            raise IndexError(
                f"shard {shard_index} out of range for level "
                f"{level_index} ({entry['shards']} shards)"
            )
        base = (entry["first"] + shard_index) * 2
        return entry["n"], self._read_int(base), self._read_int(base + 1)

    # -- lifetime -----------------------------------------------------

    def close(self) -> None:
        self._ints = None
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - defensive
            pass

    def release(self) -> None:
        """Owner-side teardown: close the mapping and unlink the name.

        Workers still holding an attachment keep their mapping (the
        memory lives until the last close), but the name disappears —
        the property the shared-memory leak tests assert.
        """
        self._ints = None
        if self._owner:
            _disown_and_unlink(self._shm.name)
        else:
            self.close()
