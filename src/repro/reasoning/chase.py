"""A chase for P_c constraints, and chase-based semi-decision.

P_c constraints are tuple-generating dependencies over binary
relations (with an equality-generating special case when the
conclusion path is empty), so the classic chase applies:

* **repair** — while some constraint has a violating witness pair
  ``(x, y)``, add a fresh conclusion path (last edge landing on the
  required node), or merge the two nodes when the conclusion is the
  empty path;
* **implication** — chase the canonical tableau of ``not phi`` (the
  prefix path to ``x`` and the hypothesis path to ``y``) with Sigma.
  If the conclusion holds at any finite stage, Sigma implies phi (the
  chased tableau maps homomorphically into every model of Sigma, and
  the conclusion is positive-existential).  If a fixpoint is reached
  without it, the fixpoint is a *finite* counter-model, refuting both
  implication and finite implication.  Otherwise: UNKNOWN — inevitable
  budget honesty, since untyped P_c implication is undecidable
  (Theorem 4.1).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.checking.satisfaction import violations
from repro.constraints.ast import PathConstraint
from repro.graph.structure import Graph, Node
from repro.reasoning.result import ImplicationResult
from repro.truth import Trilean

DEFAULT_CHASE_STEPS = 2_000


@dataclass
class ChaseOutcome:
    """Result of running the chase on a graph."""

    graph: Graph
    fixpoint: bool
    steps: int
    merges: int
    node_map: dict[Node, Node]

    def resolve(self, node: Node) -> Node:
        """Where a pre-chase node ended up (merges may have moved it)."""
        while node in self.node_map and self.node_map[node] != node:
            node = self.node_map[node]
        return node


def chase(
    graph: Graph,
    sigma: Iterable[PathConstraint],
    max_steps: int = DEFAULT_CHASE_STEPS,
    deadline: float | None = None,
    should_stop: "Callable[[], bool] | None" = None,
) -> ChaseOutcome:
    """Chase a copy of ``graph`` with Sigma until fixpoint or budget.

    Returns the chased graph; ``fixpoint`` is True when no constraint
    has a remaining violation (so the result models Sigma).
    ``deadline`` is an absolute ``time.monotonic()`` value (the portfolio's
    shared budget); expiry behaves like step-budget exhaustion — the
    chase stops early and the fixpoint recheck runs for real.
    ``should_stop`` is a cooperative cancellation hook (the portfolio's
    shared cancel flag) checked at the same points as the deadline.
    """
    sigma = list(sigma)
    # copy() carries the fresh-node watermark forward, so repair paths
    # added below can never resurrect a node id that merge_nodes()
    # deleted — node_map entries only ever refer to dead ids.
    work = graph.copy()
    node_map: dict[Node, Node] = {}
    steps = 0
    merges = 0

    def out_of_budget() -> bool:
        if steps >= max_steps:
            return True
        if should_stop is not None and should_stop():
            return True
        return deadline is not None and time.monotonic() > deadline

    progress = True
    clean_pass = False
    while progress and not out_of_budget():
        progress = False
        for constraint in sigma:
            if out_of_budget():
                break
            bad = violations(work, constraint, limit=1)
            while bad and not out_of_budget():
                x, y = bad[0]
                steps += 1
                progress = True
                if constraint.rhs.is_empty():
                    # Equality-generating: the conclusion "epsilon(x,y)"
                    # (forward) or "epsilon(y,x)" (backward) forces x=y.
                    keep, remove = (x, y) if y != work.root else (y, x)
                    if keep != remove:
                        work.merge_nodes(keep, remove)
                        node_map[remove] = keep
                        merges += 1
                elif constraint.is_forward():
                    work.add_path(x, constraint.rhs, dst=y)
                else:
                    work.add_path(y, constraint.rhs, dst=x)
                bad = violations(work, constraint, limit=1)
        if not progress:
            # A full pass over Sigma found no violation and performed
            # no mutation, so the graph is already verified at the
            # current generation: the fixpoint recheck below is
            # redundant.
            clean_pass = True

    # On a budget exit the recheck runs for real; images computed by the
    # last (unmutated) repair scans are served from work.path_cache.
    fixpoint = clean_pass or all(
        not violations(work, c, limit=1) for c in sigma
    )
    return ChaseOutcome(
        graph=work,
        fixpoint=fixpoint,
        steps=steps,
        merges=merges,
        node_map=node_map,
    )


def tableau_for(phi: PathConstraint) -> tuple[Graph, Node, Node]:
    """The canonical tableau of ``not phi``.

    A fresh path spelling ``pf(phi)`` from the root to ``x`` and a
    fresh path spelling ``phi.lhs`` from ``x`` to ``y``; the constraint
    fails on (x, y) unless the conclusion is forced.
    """
    graph = Graph(root="r")
    x = graph.add_path("r", phi.prefix) if not phi.prefix.is_empty() else "r"
    if phi.lhs.is_empty():
        y = x
    else:
        y = graph.add_path(x, phi.lhs)
    return graph, x, y


def chase_implication(
    sigma: Iterable[PathConstraint],
    phi: PathConstraint,
    max_steps: int = DEFAULT_CHASE_STEPS,
    deadline: float | None = None,
    should_stop: "Callable[[], bool] | None" = None,
) -> ImplicationResult:
    """Sound three-valued implication test for untyped P_c.

    >>> from repro.constraints import parse_constraints, parse_constraint
    >>> sigma = parse_constraints("a => b")
    >>> chase_implication(sigma, parse_constraint("a.c => b.c")).answer
    <Trilean.TRUE: 'true'>
    >>> result = chase_implication(sigma, parse_constraint("b => a"))
    >>> result.answer
    <Trilean.FALSE: 'false'>
    >>> result.countermodel is not None
    True
    """
    sigma = list(sigma)
    tableau, x, y = tableau_for(phi)
    outcome = chase(
        tableau,
        sigma,
        max_steps=max_steps,
        deadline=deadline,
        should_stop=should_stop,
    )
    x = outcome.resolve(x)
    y = outcome.resolve(y)
    chased = outcome.graph

    if phi.is_forward():
        conclusion_holds = chased.satisfies_path(phi.rhs, x, y)
    else:
        conclusion_holds = chased.satisfies_path(phi.rhs, y, x)

    if conclusion_holds:
        return ImplicationResult(
            answer=Trilean.TRUE,
            method="chase",
            decidable=False,
            certificate=outcome,
            notes=(
                "conclusion forced on the canonical tableau; holds for "
                "implication and finite implication",
            ),
        )
    if outcome.fixpoint:
        return ImplicationResult(
            answer=Trilean.FALSE,
            method="chase",
            decidable=False,
            countermodel=chased,
            certificate=outcome,
            notes=(
                "chase fixpoint is a finite model of Sigma violating phi",
            ),
        )
    return ImplicationResult(
        answer=Trilean.UNKNOWN,
        method="chase",
        decidable=False,
        certificate=outcome,
        notes=(f"chase budget of {max_steps} steps exhausted",),
    )
