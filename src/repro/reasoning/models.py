"""Bounded counter-model search.

Complements the chase on the refutation side of undecidable problems.
The enumeration core is a *canonical bitcode* layer: a rooted graph on
nodes ``0..n-1`` over ``L`` labels is an integer of ``L * n**2`` bits
(one per potential edge), the root-fixing permutations of ``1..n-1``
act on those bits, and :meth:`CodeSpace.canonical_codes` emits exactly
one representative per isomorphism class (the minimal code of each
orbit).  Candidates are screened by a compiled bitmask evaluator —
path images as integer bitsets, no :class:`Graph` allocated — and only
a confirmed hit is materialised as a graph and re-verified with the
Definition 2.1 checker.

Public searches:

* :func:`find_countermodel` — exhaustive canonical search over all
  rooted graphs with at most ``max_nodes`` nodes;
* :func:`brute_force_countermodel` — the pre-canonical sequential scan
  over :func:`all_graphs`, kept verbatim as an independent oracle and
  as the benchmark baseline;
* :func:`random_countermodel` — randomized search, useful as a cheap
  first pass on larger candidate sizes;
* :func:`find_typed_countermodel` — search over ``U_f(Delta)`` by
  enumerating small typed *instances* and abstracting them (Lemma 3.1),
  the only sound refutation route in the typed M+ context where
  untyped counter-models prove nothing.  Accepts a shard stride so the
  portfolio can spread the instance stream across workers.

``repro.reasoning.portfolio`` shards :func:`scan_codes` ranges across
a process pool by bit-prefix; everything here stays import-safe and
picklable for that purpose.
"""

from __future__ import annotations

import itertools
import random
import time
from collections.abc import Callable, Hashable, Iterable, Sequence
from dataclasses import dataclass

from repro.checking.engine import satisfies_all
from repro.checking.satisfaction import violations
from repro.constraints.ast import PathConstraint
from repro.graph.structure import Graph
from repro.types.instances import Instance, enumerate_instances
from repro.types.typesys import (
    MEMBERSHIP_LABEL,
    ClassRef,
    RecordType,
    Schema,
    SetType,
)


def infer_alphabet(
    sigma: Sequence[PathConstraint], phi: PathConstraint | None = None
) -> tuple[str, ...]:
    """The sorted union of all labels mentioned by ``sigma`` (and
    ``phi``).

    Hoisted out of the individual search functions so a portfolio run
    computes the alphabet once and threads it through every engine and
    shard, instead of each call site re-walking the constraint set.
    """
    alphabet: set[str] = set() if phi is None else set(phi.alphabet())
    for psi in sigma:
        alphabet |= psi.alphabet()
    return tuple(sorted(alphabet))


def _is_countermodel(
    graph: Graph, sigma: Sequence[PathConstraint], phi: PathConstraint
) -> bool:
    # Both checks read through graph.path_cache, so constraints in
    # sigma sharing a prefix (or phi's own prefix) re-use one image per
    # candidate graph instead of re-walking it per constraint.
    if violations(graph, phi, limit=1):
        return satisfies_all(graph, sigma)
    return False


def all_graphs(
    node_count: int, labels: Sequence[str]
) -> Iterable[Graph]:
    """Every rooted graph on nodes ``0..node_count-1`` (root 0).

    There are ``2 ** (len(labels) * node_count**2)`` of them; callers
    keep ``node_count <= 3`` and few labels.
    """
    slots = [
        (src, label, dst)
        for src in range(node_count)
        for label in labels
        for dst in range(node_count)
    ]
    for bits in itertools.product((False, True), repeat=len(slots)):
        graph = Graph(root=0, nodes=range(node_count))
        for chosen, (src, label, dst) in zip(bits, slots):
            if chosen:
                graph.add_edge(src, label, dst)
        yield graph


def brute_force_countermodel(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    labels: Sequence[str] | None = None,
    max_nodes: int = 3,
) -> Graph | None:
    """The seed sequential search: every labelled graph, no pruning.

    Builds a full :class:`Graph` per candidate and checks it with the
    Definition 2.1 evaluator.  Kept as an independent oracle for the
    canonical layer's correctness tests and as the baseline the
    portfolio benchmarks measure speedups against.
    """
    sigma = list(sigma)
    if labels is None:
        labels = infer_alphabet(sigma, phi)
    for node_count in range(1, max_nodes + 1):
        for graph in all_graphs(node_count, labels):
            if _is_countermodel(graph, sigma, phi):
                return graph
    return None


# ---------------------------------------------------------------------------
# The canonical bitcode layer.
# ---------------------------------------------------------------------------


class CodeSpace:
    """The bitcode space of rooted labelled digraphs on ``0..n-1``.

    Bit ``(src * L + li) * n + dst`` of a code records the edge
    ``labels[li](src, dst)``, so a code's numeric value orders graphs
    edge-lexicographically with root-adjacent slots least significant.
    The root-fixing permutation group (all permutations of ``1..n-1``)
    acts by permuting bit positions; the *canonical* member of an
    orbit is its minimal code.  Permutations are applied through
    per-byte lookup tables, so a canonicity test costs a handful of
    table reads rather than a per-bit loop.
    """

    def __init__(self, node_count: int, labels: Sequence[str]) -> None:
        if node_count < 1:
            raise ValueError("node_count must be >= 1")
        self.node_count = node_count
        self.labels = tuple(labels)
        self.label_count = len(self.labels)
        self.bits = self.label_count * node_count * node_count
        self.total = 1 << self.bits
        self._byte_count = (self.bits + 7) // 8
        self._perm_tables = self._build_perm_tables()

    @staticmethod
    def size(node_count: int, label_count: int) -> int:
        """Closed-form space size ``2^(L*n^2)`` — no tables built.

        The cost model prices a scan with this before deciding how to
        execute it; constructing a :class:`CodeSpace` just to read
        ``total`` would pay for the permutation tables up front.
        """
        if node_count < 1 or label_count < 0:
            raise ValueError("need node_count >= 1 and label_count >= 0")
        return 1 << (label_count * node_count * node_count)

    # -- permutation machinery -----------------------------------------

    def _slot(self, src: int, label_index: int, dst: int) -> int:
        return (src * self.label_count + label_index) * self.node_count + dst

    def _build_perm_tables(self) -> list[list[list[int]]]:
        """One byte-table per non-identity root-fixing permutation.

        ``tables[b][v]`` is the permuted-bit contribution of byte value
        ``v`` at byte position ``b``, so applying a permutation to a
        code is an OR over ``byte_count`` lookups.
        """
        n, L = self.node_count, self.label_count
        out: list[list[list[int]]] = []
        for perm in itertools.permutations(range(1, n)):
            mapping = (0, *perm)
            if mapping == tuple(range(n)):
                continue
            slot_map = [
                self._slot(mapping[src], li, mapping[dst])
                for src in range(n)
                for li in range(L)
                for dst in range(n)
            ]
            tables: list[list[int]] = []
            for byte_pos in range(self._byte_count):
                base = byte_pos * 8
                table = [0] * 256
                for value in range(256):
                    acc = 0
                    v = value
                    while v:
                        low = v & -v
                        bit = base + low.bit_length() - 1
                        if bit < self.bits:
                            acc |= 1 << slot_map[bit]
                        v ^= low
                    table[value] = acc
                tables.append(table)
            out.append(tables)
        return out

    def _apply(self, tables: list[list[int]], code: int) -> int:
        acc = 0
        for byte_pos in range(self._byte_count):
            acc |= tables[byte_pos][(code >> (byte_pos * 8)) & 0xFF]
        return acc

    def is_canonical(self, code: int) -> bool:
        """Is ``code`` the minimal member of its isomorphism orbit?"""
        for tables in self._perm_tables:
            if self._apply(tables, code) < code:
                return False
        return True

    def orbit(self, code: int) -> frozenset[int]:
        """All codes isomorphic to ``code`` (root-fixing action)."""
        return frozenset(
            [code] + [self._apply(t, code) for t in self._perm_tables]
        )

    def canonical_form(self, code: int) -> int:
        """The minimal code isomorphic to ``code``."""
        return min(self.orbit(code))

    def canonical_codes(self) -> Iterable[int]:
        """Every canonical representative, in ascending code order."""
        for code in range(self.total):
            if self.is_canonical(code):
                yield code

    def canonical_classes(self) -> Iterable[tuple[int, int]]:
        """``(representative, orbit size)`` per isomorphism class.

        The orbit sizes partition the full space:
        ``sum(size for _, size in canonical_classes()) == self.total``
        — the completeness reconciliation the tests check for
        ``n <= 3``.
        """
        for code in self.canonical_codes():
            yield code, len(self.orbit(code))

    # -- decoding ------------------------------------------------------

    def adjacency(self, code: int) -> tuple[list[list[int]], list[list[int]]]:
        """Decode to ``(adj, radj)`` bitmask matrices.

        ``adj[li][src]`` is the bitmask of ``dst`` nodes with
        ``labels[li](src, dst)``; ``radj`` is the transpose (for
        backward-constraint conclusions).
        """
        n, L = self.node_count, self.label_count
        adj = [[0] * n for _ in range(L)]
        radj = [[0] * n for _ in range(L)]
        rem = code
        while rem:
            low = rem & -rem
            slot = low.bit_length() - 1
            rem ^= low
            src_li, dst = divmod(slot, n)
            src, li = divmod(src_li, L)
            adj[li][src] |= 1 << dst
            radj[li][dst] |= 1 << src
        return adj, radj

    def all_reachable(self, adj: list[list[int]]) -> bool:
        """Is every node reachable from the root (node 0)?

        Searching level-by-level, a counter-model with an unreachable
        node restricts to a smaller counter-model (P_c satisfaction
        only reads the root-reachable part), so levels may require full
        reachability without losing completeness.
        """
        n = self.node_count
        full = (1 << n) - 1
        reach = 1
        for _ in range(n):
            frontier = reach
            nxt = reach
            while frontier:
                low = frontier & -frontier
                src = low.bit_length() - 1
                frontier ^= low
                for row in adj:
                    nxt |= row[src]
            if nxt == reach:
                break
            reach = nxt
            if reach == full:
                return True
        return reach == full

    def to_graph(self, code: int) -> Graph:
        """Materialise a code as a :class:`Graph` (root 0)."""
        graph = Graph(root=0, nodes=range(self.node_count))
        n, L = self.node_count, self.label_count
        rem = code
        while rem:
            low = rem & -rem
            slot = low.bit_length() - 1
            rem ^= low
            src_li, dst = divmod(slot, n)
            src, li = divmod(src_li, L)
            graph.add_edge(src, self.labels[li], dst)
        return graph


# ---------------------------------------------------------------------------
# Compiled constraint evaluation over bitmask adjacency.
# ---------------------------------------------------------------------------

#: Sentinel label index for labels outside the enumeration alphabet —
#: their path images are empty on every candidate.
_DEAD = -1


@dataclass(frozen=True)
class _CompiledConstraint:
    """A P_c constraint lowered to label-index sequences."""

    prefix: tuple[int, ...]
    lhs: tuple[int, ...]
    rhs: tuple[int, ...]
    forward: bool
    #: reversed conclusion, for backward constraints evaluated as one
    #: predecessor image per witness x.
    rhs_reversed: tuple[int, ...]


def compile_constraints(
    constraints: Sequence[PathConstraint], labels: Sequence[str]
) -> list[_CompiledConstraint]:
    """Lower constraints onto a label-index alphabet."""
    index = {label: i for i, label in enumerate(labels)}

    def lower(path) -> tuple[int, ...]:
        return tuple(index.get(label, _DEAD) for label in path)

    out = []
    for constraint in constraints:
        rhs = lower(constraint.rhs)
        out.append(
            _CompiledConstraint(
                prefix=lower(constraint.prefix),
                lhs=lower(constraint.lhs),
                rhs=rhs,
                forward=constraint.is_forward(),
                rhs_reversed=tuple(reversed(rhs)),
            )
        )
    return out


def constraint_program(c: _CompiledConstraint) -> dict:
    """The JSON-serialisable form of a compiled constraint.

    This is what the shared-memory arena ships to pool workers instead
    of pickled constraint ASTs: plain label-index words relative to the
    arena's alphabet.
    """
    return {
        "prefix": list(c.prefix),
        "lhs": list(c.lhs),
        "rhs": list(c.rhs),
        "forward": c.forward,
    }


def constraint_from_program(program: dict) -> _CompiledConstraint:
    """Rebuild a compiled constraint from :func:`constraint_program`."""
    rhs = tuple(program["rhs"])
    return _CompiledConstraint(
        prefix=tuple(program["prefix"]),
        lhs=tuple(program["lhs"]),
        rhs=rhs,
        forward=bool(program["forward"]),
        rhs_reversed=tuple(reversed(rhs)),
    )


def _image(adj: list[list[int]], word: tuple[int, ...], frontier: int) -> int:
    """The bitset image of ``frontier`` under a label-index word."""
    for li in word:
        if li == _DEAD:
            return 0
        row = adj[li]
        nxt = 0
        while frontier:
            low = frontier & -frontier
            nxt |= row[low.bit_length() - 1]
            frontier ^= low
        if not nxt:
            return 0
        frontier = nxt
    return frontier


def _constraint_ok(
    adj: list[list[int]],
    radj: list[list[int]],
    c: _CompiledConstraint,
) -> bool:
    """Does the candidate satisfy one compiled constraint?"""
    xs = _image(adj, c.prefix, 1)
    while xs:
        low = xs & -xs
        xs ^= low
        hypothesis = _image(adj, c.lhs, low)
        if not hypothesis:
            continue
        if c.forward:
            conclusion = _image(adj, c.rhs, low)
        else:
            conclusion = _image(radj, c.rhs_reversed, low)
        if hypothesis & ~conclusion:
            return False
    return True


def _code_is_countermodel(
    adj: list[list[int]],
    radj: list[list[int]],
    compiled_sigma: Sequence[_CompiledConstraint],
    compiled_phi: _CompiledConstraint,
) -> bool:
    if _constraint_ok(adj, radj, compiled_phi):
        return False
    for c in compiled_sigma:
        if not _constraint_ok(adj, radj, c):
            return False
    return True


# ---------------------------------------------------------------------------
# Shard scanning (the unit of work the portfolio distributes).
# ---------------------------------------------------------------------------


@dataclass
class ShardReport:
    """Outcome of scanning one code range at one node count."""

    node_count: int
    start: int
    stop: int
    hit: int | None
    examined: int
    canonical: int
    exhausted: bool
    elapsed: float = 0.0


def scan_codes(
    space: CodeSpace,
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    start: int = 0,
    stop: int | None = None,
    deadline: float | None = None,
    require_reachable: bool = True,
    check_every: int = 4096,
    should_stop: "Callable[[], bool] | None" = None,
    compiled_sigma: "Sequence[_CompiledConstraint] | None" = None,
    compiled_phi: "_CompiledConstraint | None" = None,
) -> ShardReport:
    """Scan ``[start, stop)`` for the first canonical counter-model.

    Non-canonical codes are skipped before decoding; with
    ``require_reachable`` (the level-search default) codes with
    root-unreachable nodes are skipped after decoding.  ``deadline``
    is an absolute ``time.monotonic()`` value checked every ``check_every``
    codes, as is ``should_stop`` (the cooperative cancellation hook a
    pool worker polls from a shared :class:`~repro.reasoning.shm.CancelFlag`);
    either stops the scan with ``exhausted=False``.  Callers that
    already compiled the constraints against ``space.labels`` (the
    shared-memory shard path) pass ``compiled_sigma``/``compiled_phi``
    to skip recompilation.  Deterministic: the hit is the smallest
    counter-model code in range, independent of sharding.
    """
    began = time.perf_counter()
    stop = space.total if stop is None else min(stop, space.total)
    if compiled_sigma is None:
        compiled_sigma = compile_constraints(list(sigma), space.labels)
    if compiled_phi is None:
        (compiled_phi,) = compile_constraints([phi], space.labels)
    is_canonical = space.is_canonical
    adjacency = space.adjacency
    examined = 0
    canonical = 0
    for code in range(start, stop):
        if examined % check_every == 0 and (
            (deadline is not None and time.monotonic() > deadline)
            or (should_stop is not None and should_stop())
        ):
            return ShardReport(
                node_count=space.node_count,
                start=start,
                stop=stop,
                hit=None,
                examined=examined,
                canonical=canonical,
                exhausted=False,
                elapsed=time.perf_counter() - began,
            )
        examined += 1
        if not is_canonical(code):
            continue
        canonical += 1
        adj, radj = adjacency(code)
        if require_reachable and not space.all_reachable(adj):
            continue
        if _code_is_countermodel(adj, radj, compiled_sigma, compiled_phi):
            return ShardReport(
                node_count=space.node_count,
                start=start,
                stop=stop,
                hit=code,
                examined=examined,
                canonical=canonical,
                exhausted=True,
                elapsed=time.perf_counter() - began,
            )
    return ShardReport(
        node_count=space.node_count,
        start=start,
        stop=stop,
        hit=None,
        examined=examined,
        canonical=canonical,
        exhausted=True,
        elapsed=time.perf_counter() - began,
    )


def _materialise_hit(
    space: CodeSpace,
    code: int,
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
) -> Graph:
    """Build the hit graph and re-verify it with the reference checker.

    The bit evaluator and the Definition 2.1 evaluator are tested
    equivalent, but a hit is rare enough that double-checking it is
    free insurance against a drift between the two.
    """
    graph = space.to_graph(code)
    if not _is_countermodel(graph, list(sigma), phi):  # pragma: no cover
        raise RuntimeError(
            f"bitcode checker accepted code {code} at n={space.node_count} "
            "but the reference checker rejects it"
        )
    return graph


def find_countermodel(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    labels: Sequence[str] | None = None,
    max_nodes: int = 3,
    deadline: float | None = None,
) -> Graph | None:
    """Exhaustive search for a finite G with ``G |= Sigma`` and
    ``G |/= phi``.

    A hit refutes finite implication (and implication).  Exhaustion up
    to the bound proves nothing — this is an oracle for tests, not a
    decider.  Enumerates canonical isomorphism-class representatives
    only (per node count, smallest first), so it visits a fraction of
    what :func:`brute_force_countermodel` does while finding a
    counter-model iff the brute force does.
    """
    sigma = list(sigma)
    if labels is None:
        labels = infer_alphabet(sigma, phi)
    for node_count in range(1, max_nodes + 1):
        space = CodeSpace(node_count, labels)
        report = scan_codes(space, sigma, phi, deadline=deadline)
        if report.hit is not None:
            return _materialise_hit(space, report.hit, sigma, phi)
        if not report.exhausted:
            return None
    return None


def random_countermodel(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    labels: Sequence[str],
    node_count: int,
    tries: int = 200,
    edge_probability: float = 0.3,
    seed: int = 0,
) -> Graph | None:
    """Randomized counter-model search at a fixed size.

    Samples codes from the canonical layer's bit layout (one
    ``rng.random()`` draw per slot, in slot order, so results are
    reproducible by seed) and screens them with the compiled bitmask
    checker; only a hit is materialised as a graph.
    """
    sigma = list(sigma)
    rng = random.Random(seed)
    space = CodeSpace(node_count, list(labels))
    compiled_sigma = compile_constraints(sigma, space.labels)
    (compiled_phi,) = compile_constraints([phi], space.labels)
    for _ in range(tries):
        code = 0
        for slot in range(space.bits):
            if rng.random() < edge_probability:
                code |= 1 << slot
        adj, radj = space.adjacency(code)
        if _code_is_countermodel(adj, radj, compiled_sigma, compiled_phi):
            return _materialise_hit(space, code, sigma, phi)
    return None


class _TypedScanPlan:
    """Compiled machinery for the typed fast-path scan.

    Converts each enumerated instance straight to bitmask adjacency
    over the *constraint alphabet* and screens it with the compiled
    evaluator — no :class:`Graph`, sorts, or path caches allocated per
    candidate.  Node identity is exactly the Lemma 3.1 abstraction's
    (``Instance._node_key``, extensional dedup included), and the
    traversal only follows labels the constraints mention: nodes that
    the reference graph reaches solely through other labels can never
    enter a path image starting at the root, so forward and backward
    images — and hence every constraint verdict — agree with the
    reference checker.  A screen hit is still re-verified against the
    reference checker before it is reported.
    """

    def __init__(
        self,
        schema: Schema,
        sigma: Sequence[PathConstraint],
        phi: PathConstraint,
    ) -> None:
        self.schema = schema
        self.labels = infer_alphabet(list(sigma), phi)
        self._index = {label: i for i, label in enumerate(self.labels)}
        self.compiled_sigma = compile_constraints(list(sigma), self.labels)
        (self.compiled_phi,) = compile_constraints([phi], self.labels)
        # (id(value), id(tau)) -> (value, tau, key).  The enumeration
        # reuses value and type objects across yielded instances; the
        # strong references pin those ids so the memo cannot go stale
        # through GC id reuse.
        self._key_memo: dict[
            tuple[int, int], tuple[object, object, Hashable]
        ] = {}
        self._db_eq: dict[int, bool] = {}
        self._tau_refs: list[object] = []
        self._memo_safe = not self._db_type_nested()

    def _db_type_nested(self) -> bool:
        # ``_node_key`` special-cases ``tau == db_type and value ==
        # entry``, and the entry differs per instance — memoised keys
        # would go stale across instances if a *nested* position could
        # carry a type structurally equal to db_type.  No realistic
        # schema does this; detect it once and fall back to the
        # reference keys when it happens.
        db = self.schema.db_type
        for tau in db.walk():
            if tau is not db and tau == db:
                return True
        for name in self.schema.class_names:
            body = self.schema.resolve(ClassRef(name))
            for tau in body.walk():
                if tau == db:
                    return True
        return False

    def _key(self, inst: Instance, value: object, tau: object) -> Hashable:
        if not self._memo_safe:
            return inst._node_key(value, tau)
        tid = id(tau)
        is_db = self._db_eq.get(tid)
        if is_db is None:
            is_db = tau == self.schema.db_type
            self._db_eq[tid] = is_db
            self._tau_refs.append(tau)
        if is_db and value == inst.entry:
            return "r"
        memo_key = (id(value), tid)
        hit = self._key_memo.get(memo_key)
        if hit is not None:
            return hit[2]
        key = inst._node_key(value, tau)
        self._key_memo[memo_key] = (value, tau, key)
        return key

    def bitmasks(
        self, inst: Instance
    ) -> tuple[list[list[int]], list[list[int]]]:
        """``(adj, radj)`` rows over ``self.labels`` for one instance."""
        label_count = len(self.labels)
        index = self._index
        schema = self.schema
        member_li = index.get(MEMBERSHIP_LABEL)
        rows: list[list[int]] = [[] for _ in range(label_count)]
        nodes: dict[Hashable, int] = {}

        def new_node(key: Hashable) -> int:
            nid = len(nodes)
            nodes[key] = nid
            for row in rows:
                row.append(0)
            return nid

        def visit(nid: int, value: object, tau: object) -> None:
            body = schema.resolve(tau)
            if isinstance(tau, ClassRef):
                value = inst.value_of(value)
            if isinstance(body, SetType):
                if member_li is None:
                    return
                element = body.element
                mask = 0
                for member in value:
                    mask |= 1 << attach(member, element)
                rows[member_li][nid] |= mask
            elif isinstance(body, RecordType):
                for label in body.labels:
                    li = index.get(label)
                    if li is None:
                        continue
                    child = attach(value[label], body.field(label))
                    rows[li][nid] |= 1 << child

        def attach(value: object, tau: object) -> int:
            key = self._key(inst, value, tau)
            nid = nodes.get(key)
            if nid is None:
                nid = new_node(key)
                visit(nid, value, tau)
            return nid

        new_node("r")
        visit(0, inst.entry, schema.db_type)
        node_count = len(nodes)
        radj: list[list[int]] = [[0] * node_count for _ in range(label_count)]
        for li in range(label_count):
            row = rows[li]
            rrow = radj[li]
            for src in range(node_count):
                mask = row[src]
                while mask:
                    low = mask & -mask
                    rrow[low.bit_length() - 1] |= 1 << src
                    mask ^= low
        return rows, radj


@dataclass
class TypedShardReport:
    """Outcome of scanning one stride of the typed instance stream."""

    shard_index: int
    shard_count: int
    #: stream index of the hit (for deterministic cross-shard combine:
    #: the globally first hit is the minimal index over all strides).
    hit_index: int | None
    instance: Instance | None
    graph: Graph | None
    examined: int
    exhausted: bool
    elapsed: float = 0.0


def scan_typed_instances(
    schema: Schema,
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    max_oids: int = 2,
    max_set_size: int = 2,
    limit: int = 5_000,
    shard_index: int = 0,
    shard_count: int = 1,
    deadline: float | None = None,
    compiled: bool = False,
    should_stop: Callable[[], bool] | None = None,
    check_every: int = 32,
) -> TypedShardReport:
    """Scan one stride of ``U_f(Delta)``'s small-instance stream.

    Worker ``k`` of ``shard_count`` checks instances ``k,
    k + shard_count, ...`` of the deterministic enumeration order and
    stops at its first counter-model; combining shards by minimal
    ``hit_index`` reproduces the sequential result exactly.

    With ``compiled`` each candidate is screened by the bitmask fast
    path (:class:`_TypedScanPlan`) and only screen hits pay for the
    reference graph + checker — same hits, a fraction of the work.
    ``deadline`` and ``should_stop`` are polled every ``check_every``
    scanned instances.
    """
    began = time.perf_counter()
    sigma = list(sigma)
    plan = _TypedScanPlan(schema, sigma, phi) if compiled else None
    examined = 0
    for index, instance in enumerate(
        enumerate_instances(
            schema, max_oids=max_oids, max_set_size=max_set_size, limit=limit
        )
    ):
        if index % shard_count != shard_index:
            continue
        if examined % check_every == 0 and (
            (deadline is not None and time.monotonic() > deadline)
            or (should_stop is not None and should_stop())
        ):
            return TypedShardReport(
                shard_index=shard_index,
                shard_count=shard_count,
                hit_index=None,
                instance=None,
                graph=None,
                examined=examined,
                exhausted=False,
                elapsed=time.perf_counter() - began,
            )
        examined += 1
        if plan is not None:
            adj, radj = plan.bitmasks(instance)
            if not _code_is_countermodel(
                adj, radj, plan.compiled_sigma, plan.compiled_phi
            ):
                continue
        graph = instance.to_graph()
        if _is_countermodel(graph, sigma, phi):
            return TypedShardReport(
                shard_index=shard_index,
                shard_count=shard_count,
                hit_index=index,
                instance=instance,
                graph=graph,
                examined=examined,
                exhausted=True,
                elapsed=time.perf_counter() - began,
            )
    return TypedShardReport(
        shard_index=shard_index,
        shard_count=shard_count,
        hit_index=None,
        instance=None,
        graph=None,
        examined=examined,
        exhausted=True,
        elapsed=time.perf_counter() - began,
    )


def find_typed_countermodel(
    schema: Schema,
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    max_oids: int = 2,
    max_set_size: int = 2,
    limit: int = 5_000,
    deadline: float | None = None,
) -> tuple[Instance, Graph] | None:
    """Search ``U_f(Delta)`` for a counter-model, via small instances.

    Every yield of :func:`enumerate_instances` abstracts (Lemma 3.1) to
    a graph satisfying ``Phi(Delta)``, so a hit refutes ``Sigma
    |=_(f,Delta) phi`` — the sound refutation route for the
    undecidable typed cells of Table 1.
    """
    report = scan_typed_instances(
        schema,
        sigma,
        phi,
        max_oids=max_oids,
        max_set_size=max_set_size,
        limit=limit,
        deadline=deadline,
    )
    if report.hit_index is None:
        return None
    assert report.instance is not None and report.graph is not None
    return report.instance, report.graph
