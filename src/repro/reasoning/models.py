"""Bounded counter-model search.

Complements the chase on the refutation side of undecidable problems:

* :func:`find_countermodel` — exhaustive search over all rooted graphs
  with at most ``max_nodes`` nodes (only feasible for tiny bounds; the
  property-based tests use it as an independent oracle);
* :func:`random_countermodel` — randomized search, useful as a cheap
  first pass on larger candidate sizes;
* :func:`find_typed_countermodel` — search over ``U_f(Delta)`` by
  enumerating small typed *instances* and abstracting them (Lemma 3.1),
  the only sound refutation route in the typed M+ context where
  untyped counter-models prove nothing.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable, Sequence

from repro.checking.engine import satisfies_all
from repro.checking.satisfaction import violations
from repro.constraints.ast import PathConstraint
from repro.graph.structure import Graph
from repro.types.instances import Instance, enumerate_instances
from repro.types.typesys import Schema


def _is_countermodel(
    graph: Graph, sigma: Sequence[PathConstraint], phi: PathConstraint
) -> bool:
    # Both checks read through graph.path_cache, so constraints in
    # sigma sharing a prefix (or phi's own prefix) re-use one image per
    # candidate graph instead of re-walking it per constraint — the
    # enumeration loops above call this millions of times.
    if violations(graph, phi, limit=1):
        return satisfies_all(graph, sigma)
    return False


def all_graphs(
    node_count: int, labels: Sequence[str]
) -> Iterable[Graph]:
    """Every rooted graph on nodes ``0..node_count-1`` (root 0).

    There are ``2 ** (len(labels) * node_count**2)`` of them; callers
    keep ``node_count <= 3`` and few labels.
    """
    slots = [
        (src, label, dst)
        for src in range(node_count)
        for label in labels
        for dst in range(node_count)
    ]
    for bits in itertools.product((False, True), repeat=len(slots)):
        graph = Graph(root=0, nodes=range(node_count))
        for chosen, (src, label, dst) in zip(bits, slots):
            if chosen:
                graph.add_edge(src, label, dst)
        yield graph


def find_countermodel(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    labels: Sequence[str] | None = None,
    max_nodes: int = 3,
) -> Graph | None:
    """Exhaustive search for a finite G with ``G |= Sigma`` and
    ``G |/= phi``.

    A hit refutes finite implication (and implication).  Exhaustion up
    to the bound proves nothing — this is an oracle for tests, not a
    decider.
    """
    sigma = list(sigma)
    if labels is None:
        alphabet: set[str] = set(phi.alphabet())
        for psi in sigma:
            alphabet |= psi.alphabet()
        labels = sorted(alphabet)
    for node_count in range(1, max_nodes + 1):
        for graph in all_graphs(node_count, labels):
            if _is_countermodel(graph, sigma, phi):
                return graph
    return None


def random_countermodel(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    labels: Sequence[str],
    node_count: int,
    tries: int = 200,
    edge_probability: float = 0.3,
    seed: int = 0,
) -> Graph | None:
    """Randomized counter-model search at a fixed size."""
    sigma = list(sigma)
    rng = random.Random(seed)
    labels = list(labels)
    for _ in range(tries):
        graph = Graph(root=0, nodes=range(node_count))
        for src in range(node_count):
            for label in labels:
                for dst in range(node_count):
                    if rng.random() < edge_probability:
                        graph.add_edge(src, label, dst)
        if _is_countermodel(graph, sigma, phi):
            return graph
    return None


def find_typed_countermodel(
    schema: Schema,
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    max_oids: int = 2,
    max_set_size: int = 2,
    limit: int = 5_000,
) -> tuple[Instance, Graph] | None:
    """Search ``U_f(Delta)`` for a counter-model, via small instances.

    Every yield of :func:`enumerate_instances` abstracts (Lemma 3.1) to
    a graph satisfying ``Phi(Delta)``, so a hit refutes ``Sigma
    |=_(f,Delta) phi`` — the sound refutation route for the
    undecidable typed cells of Table 1.
    """
    sigma = list(sigma)
    for instance in enumerate_instances(
        schema, max_oids=max_oids, max_set_size=max_set_size, limit=limit
    ):
        graph = instance.to_graph()
        if _is_countermodel(graph, sigma, phi):
            return instance, graph
    return None
