"""Parallel portfolio semi-decision: proof search races refutation.

The undecidable cells of Table 1 are served by semi-decision — the
chase (sound for TRUE, and for FALSE when it reaches a fixpoint) races
bounded counter-model search (sound for FALSE).  The seed ran the two
engines sequentially; this module runs them as a *portfolio* across a
``ProcessPoolExecutor``:

* the chase runs as one pool task;
* counter-model search is sharded by bit-prefix over the canonical
  code space of :mod:`repro.reasoning.models` — each worker scans a
  contiguous code range (level by node count, levels in order);
* typed contexts shard the ``U_f(Delta)`` instance stream by stride
  instead;
* the first engine to produce a *definite* certificate wins, pending
  work is cancelled, and per-engine statistics (candidates examined,
  elapsed time, outcome) are surfaced on the returned
  :class:`ImplicationResult`.

Determinism: the counter-model engine's answer is a function of the
instance alone, not of scheduling.  Shards report the smallest hit in
their range; the combiner takes the hit of the lowest range whose
predecessors exhausted hitless, which is exactly the sequential scan
order.  So ``--jobs 1`` and ``--jobs 4`` return the same counter-model
(deadline expiry aside — a budget stop is reported as UNKNOWN either
way, but *which* candidates were reached may differ).

Budgets: a :class:`Budget` carries one absolute wall-clock deadline
shared by every engine and shard; expiry turns whichever scans are
still running into honest UNKNOWN contributions.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass

from repro.constraints.ast import PathConstraint
from repro.graph.structure import Graph
from repro.reasoning.chase import DEFAULT_CHASE_STEPS, chase_implication
from repro.reasoning.models import (
    CodeSpace,
    ShardReport,
    TypedShardReport,
    infer_alphabet,
    scan_codes,
    scan_typed_instances,
)
from repro.reasoning.result import EngineStats, ImplicationResult
from repro.truth import Trilean
from repro.types.typesys import Schema

#: Shards per enumeration level, as a multiple of the worker count —
#: finer than the pool so a winner can cancel still-pending ranges.
SHARD_FACTOR = 4

#: A level this small is scanned as a single shard (pool overhead
#: would dominate).
MIN_SHARDED_SPACE = 4096


@dataclass(frozen=True)
class Budget:
    """A wall-clock budget shared by every engine of a portfolio run.

    ``deadline`` is absolute (``time.time()``); ``None`` means
    unlimited.  The object is immutable and picklable, so one budget
    threads through the dispatcher, the chase, and every search shard
    in every worker process.
    """

    deadline: float | None = None

    @classmethod
    def from_seconds(cls, seconds: float | None) -> "Budget":
        """A budget expiring ``seconds`` from now (``None`` = none)."""
        if seconds is None:
            return cls(deadline=None)
        return cls(deadline=time.time() + seconds)

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.time() > self.deadline

    def remaining(self) -> float | None:
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.time())


@dataclass
class CountermodelOutcome:
    """Aggregate of an (un)typed counter-model search run."""

    graph: Graph | None = None
    certificate: object = None
    examined: int = 0
    canonical: int = 0
    exhausted: bool = True
    elapsed: float = 0.0
    levels: tuple[int, ...] = ()

    @property
    def outcome_label(self) -> str:
        if self.graph is not None:
            return "hit"
        return "exhausted" if self.exhausted else "budget"


# ---------------------------------------------------------------------------
# Pool tasks (top-level, picklable).
# ---------------------------------------------------------------------------


def _chase_task(
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    max_steps: int,
    deadline: float | None,
) -> tuple[ImplicationResult, float]:
    began = time.perf_counter()
    result = chase_implication(
        sigma, phi, max_steps=max_steps, deadline=deadline
    )
    return result, time.perf_counter() - began


def _shard_task(
    node_count: int,
    labels: tuple[str, ...],
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    start: int,
    stop: int,
    deadline: float | None,
) -> ShardReport:
    space = CodeSpace(node_count, labels)
    return scan_codes(space, sigma, phi, start, stop, deadline=deadline)


def _typed_shard_task(
    schema: Schema,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    max_oids: int,
    max_set_size: int,
    limit: int,
    shard_index: int,
    shard_count: int,
    deadline: float | None,
) -> TypedShardReport:
    return scan_typed_instances(
        schema,
        sigma,
        phi,
        max_oids=max_oids,
        max_set_size=max_set_size,
        limit=limit,
        shard_index=shard_index,
        shard_count=shard_count,
        deadline=deadline,
    )


def _plan_shards(total: int, shard_count: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into contiguous bit-prefix ranges."""
    shard_count = max(1, min(shard_count, total))
    width, remainder = divmod(total, shard_count)
    ranges = []
    start = 0
    for i in range(shard_count):
        stop = start + width + (1 if i < remainder else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


# ---------------------------------------------------------------------------
# The chase engine wrapper (used by both modes).
# ---------------------------------------------------------------------------


@dataclass
class _ChaseState:
    """Bookkeeping for the proof-search engine during a race."""

    result: ImplicationResult | None = None
    stats: EngineStats | None = None

    def absorb(self, payload: tuple[ImplicationResult, float]) -> None:
        result, elapsed = payload
        self.result = result
        steps = getattr(result.certificate, "steps", 0)
        self.stats = EngineStats(
            engine="chase",
            outcome=result.answer.value,
            candidates=steps,
            elapsed=elapsed,
        )

    @property
    def definite(self) -> bool:
        return self.result is not None and self.result.answer.is_definite


# ---------------------------------------------------------------------------
# Counter-model search: sequential and sharded-parallel drivers.
# ---------------------------------------------------------------------------


def _sequential_countermodel(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    labels: tuple[str, ...],
    max_nodes: int,
    budget: Budget,
) -> CountermodelOutcome:
    began = time.perf_counter()
    out = CountermodelOutcome(levels=tuple(range(1, max_nodes + 1)))
    for node_count in range(1, max_nodes + 1):
        space = CodeSpace(node_count, labels)
        report = scan_codes(
            space, sigma, phi, deadline=budget.deadline
        )
        out.examined += report.examined
        out.canonical += report.canonical
        if report.hit is not None:
            out.graph = space.to_graph(report.hit)
            break
        if not report.exhausted:
            out.exhausted = False
            break
    out.elapsed = time.perf_counter() - began
    return out


class _RaceInterrupted(Exception):
    """Raised inside the shard-combine loop when the chase wins."""


def _drain_levels(
    pool: ProcessPoolExecutor,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    labels: tuple[str, ...],
    max_nodes: int,
    jobs: int,
    budget: Budget,
    chase_future: Future | None,
    chase_state: _ChaseState,
) -> CountermodelOutcome:
    """Run the sharded level-by-level scan, racing ``chase_future``.

    Raises :class:`_RaceInterrupted` as soon as the chase returns a
    definite answer (after cancelling pending shards) — the caller
    already holds the chase result in ``chase_state``.
    """
    began = time.perf_counter()
    out = CountermodelOutcome(levels=tuple(range(1, max_nodes + 1)))

    def cancel_all(futures: list[Future]) -> None:
        for future in futures:
            future.cancel()

    watching_chase = chase_future is not None
    for node_count in range(1, max_nodes + 1):
        space = CodeSpace(node_count, labels)
        shard_count = (
            1
            if space.total <= MIN_SHARDED_SPACE
            else jobs * SHARD_FACTOR
        )
        ranges = _plan_shards(space.total, shard_count)
        futures = [
            pool.submit(
                _shard_task,
                node_count,
                labels,
                sigma,
                phi,
                start,
                stop,
                budget.deadline,
            )
            for start, stop in ranges
        ]
        reports: dict[Future, ShardReport] = {}
        # Resolve shards in range order: the winner is the hit of the
        # lowest range whose predecessors exhausted hitless — the
        # sequential scan order, whatever the completion order.
        resolved = 0
        while resolved < len(futures):
            pending = {f for f in futures if f not in reports}
            if watching_chase:
                pending.add(chase_future)
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            if watching_chase and chase_future in done:
                chase_state.absorb(chase_future.result())
                watching_chase = False
                if chase_state.definite:
                    cancel_all(futures)
                    out.exhausted = False
                    out.elapsed = time.perf_counter() - began
                    raise _RaceInterrupted
            for future in done:
                if future is chase_future:
                    continue
                reports[future] = future.result()
            # Walk ranges in order as far as completed reports go.
            while resolved < len(futures):
                future = futures[resolved]
                if future not in reports:
                    break
                report = reports[future]
                out.examined += report.examined
                out.canonical += report.canonical
                if report.hit is not None:
                    cancel_all(futures[resolved + 1 :])
                    out.graph = space.to_graph(report.hit)
                    out.elapsed = time.perf_counter() - began
                    return out
                if not report.exhausted:
                    # Budget expired inside this range: everything
                    # beyond it is unexplored.
                    cancel_all(futures[resolved + 1 :])
                    out.exhausted = False
                    out.elapsed = time.perf_counter() - began
                    return out
                resolved += 1
    out.elapsed = time.perf_counter() - began
    return out


# ---------------------------------------------------------------------------
# Public API.
# ---------------------------------------------------------------------------


def parallel_countermodel_search(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    labels: Sequence[str] | None = None,
    max_nodes: int = 3,
    jobs: int = 1,
    budget: Budget | None = None,
) -> CountermodelOutcome:
    """Canonical counter-model search, sharded across ``jobs`` workers.

    Deterministic: returns the same counter-model as the sequential
    canonical scan for any ``jobs`` (budget expiry aside).  With
    ``jobs <= 1`` no pool is created at all.
    """
    sigma = tuple(sigma)
    budget = budget or Budget()
    if labels is None:
        labels = infer_alphabet(sigma, phi)
    labels = tuple(labels)
    if jobs <= 1:
        return _sequential_countermodel(sigma, phi, labels, max_nodes, budget)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return _drain_levels(
            pool,
            sigma,
            phi,
            labels,
            max_nodes,
            jobs,
            budget,
            chase_future=None,
            chase_state=_ChaseState(),
        )


def parallel_find_countermodel(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    labels: Sequence[str] | None = None,
    max_nodes: int = 3,
    jobs: int = 1,
    budget: Budget | None = None,
) -> Graph | None:
    """Like :func:`repro.reasoning.models.find_countermodel`, sharded
    across ``jobs`` worker processes."""
    return parallel_countermodel_search(
        sigma, phi, labels=labels, max_nodes=max_nodes, jobs=jobs, budget=budget
    ).graph


def _typed_parallel(
    pool: ProcessPoolExecutor,
    schema: Schema,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    jobs: int,
    budget: Budget,
    limit: int,
    max_oids: int,
    max_set_size: int,
    chase_future: Future | None,
    chase_state: _ChaseState,
) -> CountermodelOutcome:
    """Stride-sharded ``U_f(Delta)`` scan racing the chase.

    Strides interleave, so every shard must finish before the minimal
    hit index is known; shards early-exit at their own first hit.
    """
    began = time.perf_counter()
    out = CountermodelOutcome()
    futures = [
        pool.submit(
            _typed_shard_task,
            schema,
            sigma,
            phi,
            max_oids,
            max_set_size,
            limit,
            shard_index,
            jobs,
            budget.deadline,
        )
        for shard_index in range(jobs)
    ]
    reports: list[TypedShardReport] = []
    watching_chase = chase_future is not None
    pending = set(futures)
    while pending:
        wait_set = set(pending)
        if watching_chase and not chase_future.done():
            wait_set.add(chase_future)
        done, _ = wait(wait_set, return_when=FIRST_COMPLETED)
        if watching_chase and chase_future in done:
            chase_state.absorb(chase_future.result())
            watching_chase = False
            # Only a chase TRUE transfers to the typed context; FALSE
            # from an untyped fixpoint proves nothing over U_f(Delta).
            if chase_state.result.answer is Trilean.TRUE:
                for future in futures:
                    future.cancel()
                out.exhausted = False
                out.elapsed = time.perf_counter() - began
                raise _RaceInterrupted
        for future in done:
            if future is chase_future:
                continue
            reports.append(future.result())
            pending.discard(future)
    out.examined = sum(r.examined for r in reports)
    out.exhausted = all(r.exhausted for r in reports)
    hits = [r for r in reports if r.hit_index is not None]
    if hits:
        best = min(hits, key=lambda r: r.hit_index)
        out.graph = best.graph
        out.certificate = best.instance
    out.elapsed = time.perf_counter() - began
    return out


def _sequential_typed(
    schema: Schema,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    budget: Budget,
    limit: int,
    max_oids: int,
    max_set_size: int,
) -> CountermodelOutcome:
    report = scan_typed_instances(
        schema,
        sigma,
        phi,
        max_oids=max_oids,
        max_set_size=max_set_size,
        limit=limit,
        deadline=budget.deadline,
    )
    return CountermodelOutcome(
        graph=report.graph,
        certificate=report.instance,
        examined=report.examined,
        exhausted=report.exhausted,
        elapsed=report.elapsed,
    )


def run_portfolio(
    problem,
    jobs: int = 1,
    budget: Budget | None = None,
    chase_steps: int = DEFAULT_CHASE_STEPS,
    countermodel_nodes: int = 3,
    typed_search_limit: int = 2_000,
    typed_max_oids: int = 2,
    typed_max_set_size: int = 2,
) -> ImplicationResult:
    """Semi-decide an undecidable-cell implication with a portfolio.

    ``problem`` is an :class:`repro.reasoning.dispatcher
    .ImplicationProblem` in an undecidable (fragment, context) cell.
    With ``jobs <= 1`` the engines run sequentially in-process (chase
    first, then counter-model search — the seed pipeline); with
    ``jobs > 1`` they race across a process pool with first-winner
    cancellation.  Every returned result carries per-engine
    :class:`EngineStats`.
    """
    # Imported here: dispatcher imports this module's Budget/run_portfolio.
    from repro.reasoning.dispatcher import Context, classify

    budget = budget or Budget()
    sigma = tuple(problem.sigma)
    phi = problem.phi
    context = problem.context
    problem_class = classify(sigma, phi)
    labels = infer_alphabet(sigma, phi)
    notes = [
        f"{problem_class.value} over {context.value}: undecidable "
        "problem class; semi-decision with explicit budgets",
        f"portfolio: jobs={jobs}, "
        + (
            f"deadline in {budget.remaining():.3f}s"
            if budget.deadline is not None
            else "no deadline"
        ),
    ]
    untyped = context is Context.SEMISTRUCTURED

    chase_state = _ChaseState()
    if jobs <= 1:
        chase_state.absorb(
            _chase_task(sigma, phi, chase_steps, budget.deadline)
        )
        if untyped and chase_state.definite:
            return _finish_chase_win(chase_state, notes, untyped=True)
        if not untyped and chase_state.result.answer is Trilean.TRUE:
            return _finish_chase_win(chase_state, notes, untyped=False)
        if untyped:
            search = _sequential_countermodel(
                sigma, phi, labels, countermodel_nodes, budget
            )
        else:
            search = _sequential_typed(
                problem.schema,
                sigma,
                phi,
                budget,
                typed_search_limit,
                typed_max_oids,
                typed_max_set_size,
            )
        return _combine(
            chase_state, search, notes, untyped, countermodel_nodes, jobs
        )

    # Not a ``with`` block: Executor.__exit__ joins running tasks, but
    # first-winner cancellation wants to return the moment a certificate
    # exists.  shutdown(wait=False, cancel_futures=True) drops pending
    # work; an already-running loser finishes in its worker process and
    # is discarded.
    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        chase_future = pool.submit(
            _chase_task, sigma, phi, chase_steps, budget.deadline
        )
        try:
            if untyped:
                search = _drain_levels(
                    pool,
                    sigma,
                    phi,
                    labels,
                    countermodel_nodes,
                    jobs,
                    budget,
                    chase_future,
                    chase_state,
                )
            else:
                search = _typed_parallel(
                    pool,
                    problem.schema,
                    sigma,
                    phi,
                    jobs,
                    budget,
                    typed_search_limit,
                    typed_max_oids,
                    typed_max_set_size,
                    chase_future,
                    chase_state,
                )
        except _RaceInterrupted:
            return _finish_chase_win(chase_state, notes, untyped)
        if search.graph is not None:
            # Refutation certificate in hand; the chase can stop.
            chase_future.cancel()
        elif chase_state.result is None:
            # Search exhausted/budgeted without the chase finishing:
            # its verdict is the only hope left, so wait for it.
            chase_state.absorb(chase_future.result())
            if untyped and chase_state.definite:
                return _finish_chase_win(chase_state, notes, untyped=True)
            if not untyped and chase_state.result.answer is Trilean.TRUE:
                return _finish_chase_win(chase_state, notes, untyped=False)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return _combine(
        chase_state, search, notes, untyped, countermodel_nodes, jobs
    )


def _search_stats(
    search: CountermodelOutcome, untyped: bool, jobs: int
) -> EngineStats:
    engine = "countermodel" if untyped else "typed-countermodel"
    detail = f"jobs={jobs}"
    if untyped:
        detail += f", canonical={search.canonical}"
    return EngineStats(
        engine=engine,
        outcome=search.outcome_label,
        candidates=search.examined,
        elapsed=search.elapsed,
        detail=detail,
    )


def _collect_stats(
    chase_state: _ChaseState, search_stats: EngineStats | None
) -> tuple[EngineStats, ...]:
    stats = []
    if chase_state.stats is not None:
        stats.append(chase_state.stats)
    else:
        stats.append(
            EngineStats(engine="chase", outcome="cancelled")
        )
    if search_stats is not None:
        stats.append(search_stats)
    return tuple(stats)


def _finish_chase_win(
    chase_state: _ChaseState, notes: list[str], untyped: bool
) -> ImplicationResult:
    chased = chase_state.result
    stats = _collect_stats(chase_state, None)
    if untyped:
        chased.notes = tuple(notes) + chased.notes
        chased.stats = stats
        return chased
    # Typed context: only TRUE lands here, and it transfers because
    # U(Delta) is a subclass of all structures.
    return ImplicationResult(
        answer=Trilean.TRUE,
        method="chase(untyped, transfers)",
        decidable=False,
        certificate=chased.certificate,
        notes=tuple(notes),
        stats=stats,
    )


def _combine(
    chase_state: _ChaseState,
    search: CountermodelOutcome,
    notes: list[str],
    untyped: bool,
    countermodel_nodes: int,
    jobs: int,
) -> ImplicationResult:
    stats = _collect_stats(chase_state, _search_stats(search, untyped, jobs))
    if search.graph is not None:
        if untyped:
            return ImplicationResult(
                answer=Trilean.FALSE,
                method="bounded-countermodel",
                decidable=False,
                countermodel=search.graph,
                notes=tuple(notes),
                stats=stats,
            )
        return ImplicationResult(
            answer=Trilean.FALSE,
            method="typed-instance-countermodel",
            decidable=False,
            countermodel=search.graph,
            certificate=search.certificate,
            notes=tuple(notes),
            stats=stats,
        )
    if untyped and not search.exhausted:
        notes = notes + [
            f"countermodel search stopped by budget before exhausting "
            f"{countermodel_nodes}-node bound"
        ]
    chased = chase_state.result
    extra = chased.notes if chased is not None else ()
    method = (
        "chase+bounded-countermodel" if untyped else "chase+typed-countermodel"
    )
    return ImplicationResult(
        answer=Trilean.UNKNOWN,
        method=method,
        decidable=False,
        notes=tuple(notes) + tuple(extra),
        stats=stats,
    )
