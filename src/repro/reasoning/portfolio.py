"""Parallel portfolio semi-decision: proof search races refutation.

The undecidable cells of Table 1 are served by semi-decision — the
chase (sound for TRUE, and for FALSE when it reaches a fixpoint) races
bounded counter-model search (sound for FALSE).  The seed ran the two
engines sequentially; this module runs them as a *portfolio* across a
process pool:

* the chase runs as one pool task;
* counter-model search is sharded by bit-prefix over the canonical
  code space of :mod:`repro.reasoning.models` — each worker scans a
  contiguous code range (level by node count, levels in order);
* typed contexts shard the ``U_f(Delta)`` instance stream by stride
  instead;
* the first engine to produce a *definite* certificate wins, pending
  work is cancelled, and per-engine statistics (candidates examined,
  elapsed time, outcome) are surfaced on the returned
  :class:`ImplicationResult`.

Every pool interaction goes through a
:class:`~repro.reasoning.runtime.WorkerSupervisor`: a worker crash
(segfault, OOM-kill, ``os._exit``), a payload that cannot pickle, or
a task that raises mid-engine never surfaces as a bare
``BrokenProcessPool``.  The supervisor respawns the pool with capped
backoff, resubmits lost shards from their ``(start, stop)`` ranges,
degrades to in-process execution when respawns are exhausted, and
records every event in the result's ``faults`` field.  Soundness is
structural: TRUE/FALSE always rides on an independently verifiable
certificate, so infrastructure failure can only ever demote an answer
to UNKNOWN, never flip it.

Determinism: the counter-model engine's answer is a function of the
instance alone, not of scheduling.  Shards report the smallest hit in
their range; the combiner takes the hit of the lowest range whose
predecessors exhausted hitless, which is exactly the sequential scan
order.  So ``--jobs 1`` and ``--jobs 4`` return the same counter-model
(deadline expiry and worker faults aside — a budget stop or a
degraded-and-still-failing shard is reported as UNKNOWN either way,
but *which* candidates were reached may differ).

Budgets: a :class:`Budget` carries one absolute ``time.monotonic()``
deadline shared by every engine and shard; expiry turns whichever
scans are still running into honest UNKNOWN contributions.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.constraints.ast import PathConstraint
from repro.graph.structure import Graph
from repro.reasoning.chase import DEFAULT_CHASE_STEPS, chase_implication
from repro.reasoning.costmodel import (
    ExecMode,
    ExecutionDecision,
    INLINE_MAX_CODES,
    choose_execution,
    estimate_untyped_codes,
    normalize_jobs,
    observe_typed_scan,
    observe_untyped_scan,
    validate_jobs,
    validate_max_respawns,
)
from repro.reasoning.faultinject import FaultPlan, plan_from_env
from repro.reasoning.models import (
    CodeSpace,
    ShardReport,
    TypedShardReport,
    compile_constraints,
    constraint_from_program,
    constraint_program,
    infer_alphabet,
    scan_codes,
    scan_typed_instances,
)
from repro.reasoning.result import EngineStats, ImplicationResult
from repro.reasoning.runtime import (
    Budget,
    SupervisedTask,
    WorkerSupervisor,
    warm_pool_stats,
)
from repro.reasoning.shm import CancelFlag, ScanArena
from repro.reasoning.watchdog import current_rss_mb
from repro.truth import Trilean
from repro.types.typesys import Schema

__all__ = [
    "Budget",
    "CountermodelOutcome",
    "parallel_countermodel_search",
    "parallel_find_countermodel",
    "run_portfolio",
]

#: Shards per enumeration level, as a multiple of the worker count —
#: finer than the pool so a winner can cancel still-pending ranges.
SHARD_FACTOR = 4

#: A level this small is scanned as a single shard (pool overhead
#: would dominate).
MIN_SHARDED_SPACE = 4096


@dataclass
class CountermodelOutcome:
    """Aggregate of an (un)typed counter-model search run."""

    graph: Graph | None = None
    certificate: object = None
    examined: int = 0
    canonical: int = 0
    exhausted: bool = True
    elapsed: float = 0.0
    levels: tuple[int, ...] = ()
    #: True when the scan was truncated by an unrecoverable worker
    #: fault rather than by the budget — same UNKNOWN semantics, but
    #: callers report it differently.
    fault_stop: bool = False
    #: The cost-model decision this search ran under (None when driven
    #: by :func:`run_portfolio`, which records it on the result).
    decision: ExecutionDecision | None = None

    @property
    def outcome_label(self) -> str:
        if self.graph is not None:
            return "hit"
        if self.fault_stop:
            return "faulted"
        return "exhausted" if self.exhausted else "budget"


# ---------------------------------------------------------------------------
# Pool tasks (top-level, picklable) and their per-worker caches.
#
# A warm pool survives across solve() calls, so workers amortise the
# expensive per-payload state: the attached arena (with its compiled
# constraint programs) and the CodeSpace permutation tables.  The
# caches are tiny LRUs — a worker serving two interleaved solves keeps
# both arenas mapped; anything older is closed (the parent has long
# unlinked it, so the close releases the last mapping).
# ---------------------------------------------------------------------------

_WORKER_ARENAS: OrderedDict[str, tuple] = OrderedDict()
_WORKER_CANCELS: OrderedDict[str, CancelFlag] = OrderedDict()
_WORKER_SPACES: OrderedDict[tuple, CodeSpace] = OrderedDict()


def _worker_arena(name: str) -> tuple:
    entry = _WORKER_ARENAS.get(name)
    if entry is None:
        arena = ScanArena.attach(name)
        compiled_sigma = [
            constraint_from_program(p) for p in arena.sigma_programs
        ]
        compiled_phi = constraint_from_program(arena.phi_program)
        entry = (arena, compiled_sigma, compiled_phi)
        _WORKER_ARENAS[name] = entry
        while len(_WORKER_ARENAS) > 2:
            _, (old, _, _) = _WORKER_ARENAS.popitem(last=False)
            old.close()
    else:
        _WORKER_ARENAS.move_to_end(name)
    return entry


def _worker_cancel(name: str) -> CancelFlag:
    flag = _WORKER_CANCELS.get(name)
    if flag is None:
        flag = CancelFlag.attach(name)
        _WORKER_CANCELS[name] = flag
        while len(_WORKER_CANCELS) > 2:
            _, old = _WORKER_CANCELS.popitem(last=False)
            old.close()
    else:
        _WORKER_CANCELS.move_to_end(name)
    return flag


def _worker_space(node_count: int, labels: tuple[str, ...]) -> CodeSpace:
    key = (node_count, labels)
    space = _WORKER_SPACES.get(key)
    if space is None:
        space = CodeSpace(node_count, labels)
        _WORKER_SPACES[key] = space
        while len(_WORKER_SPACES) > 8:
            _WORKER_SPACES.popitem(last=False)
    else:
        _WORKER_SPACES.move_to_end(key)
    return space


def _chase_task(
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    max_steps: int,
    deadline: float | None,
    cancel_name: str | None = None,
) -> tuple[ImplicationResult, float]:
    began = time.perf_counter()
    should_stop = None
    if cancel_name is not None:
        flag = _worker_cancel(cancel_name)
        should_stop = lambda: flag.is_set  # noqa: E731
    result = chase_implication(
        sigma,
        phi,
        max_steps=max_steps,
        deadline=deadline,
        should_stop=should_stop,
    )
    return result, time.perf_counter() - began


def _shard_task(
    node_count: int,
    labels: tuple[str, ...],
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    start: int,
    stop: int,
    deadline: float | None,
    cancel_name: str | None = None,
) -> ShardReport:
    should_stop = None
    if cancel_name is not None:
        flag = _worker_cancel(cancel_name)
        should_stop = lambda: flag.is_set  # noqa: E731
    space = CodeSpace(node_count, labels)
    return scan_codes(
        space,
        sigma,
        phi,
        start,
        stop,
        deadline=deadline,
        should_stop=should_stop,
    )


def _shard_task_shm(
    arena_name: str,
    level_index: int,
    shard_index: int,
    deadline: float | None,
    cancel_name: str | None,
) -> ShardReport:
    """One pooled scan shard, payload read from the shared arena.

    The pickled task arguments are constant-size whatever the shard
    count or constraint set; everything else — alphabet, compiled
    constraint programs, the (start, stop) code range — comes out of
    shared memory.  Also runs in-process when the supervisor degrades
    (the parent attaches to its own segment).
    """
    arena, compiled_sigma, compiled_phi = _worker_arena(arena_name)
    node_count, start, stop = arena.range_for(level_index, shard_index)
    should_stop = None
    if cancel_name is not None:
        flag = _worker_cancel(cancel_name)
        should_stop = lambda: flag.is_set  # noqa: E731
    space = _worker_space(node_count, arena.labels)
    return scan_codes(
        space,
        (),
        None,
        start,
        stop,
        deadline=deadline,
        should_stop=should_stop,
        compiled_sigma=compiled_sigma,
        compiled_phi=compiled_phi,
    )


def _typed_shard_task(
    schema: Schema,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    max_oids: int,
    max_set_size: int,
    limit: int,
    shard_index: int,
    shard_count: int,
    deadline: float | None,
    compiled: bool = False,
    cancel_name: str | None = None,
) -> TypedShardReport:
    should_stop = None
    if cancel_name is not None:
        flag = _worker_cancel(cancel_name)
        should_stop = lambda: flag.is_set  # noqa: E731
    return scan_typed_instances(
        schema,
        sigma,
        phi,
        max_oids=max_oids,
        max_set_size=max_set_size,
        limit=limit,
        shard_index=shard_index,
        shard_count=shard_count,
        deadline=deadline,
        compiled=compiled,
        should_stop=should_stop,
    )


def _plan_shards(total: int, shard_count: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into contiguous bit-prefix ranges."""
    shard_count = max(1, min(shard_count, total))
    width, remainder = divmod(total, shard_count)
    ranges = []
    start = 0
    for i in range(shard_count):
        stop = start + width + (1 if i < remainder else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


# ---------------------------------------------------------------------------
# Cost-model dispatch.
# ---------------------------------------------------------------------------


def _decide_execution(
    kind: str, work_units: int, jobs: int, execution: str
) -> ExecutionDecision:
    """Resolve requested ``jobs``/``execution`` to an execution plan.

    ``execution`` is ``"auto"`` (let the cost model choose) or one of
    the :class:`ExecMode` values to force a mode — forcing ``"pool"``
    is how the fault-injection suite keeps exercising real worker
    processes on workloads the cost model would run inline.
    """
    if execution == "auto":
        forced = None
    else:
        try:
            forced = ExecMode(execution)
        except ValueError:
            raise ValueError(
                f"execution must be 'auto', 'inline', 'sharded' or "
                f"'pool', got {execution!r}"
            ) from None
    stats = warm_pool_stats()
    warm = bool(
        stats["alive"] and not stats["leased"] and stats["jobs"] >= 2
    )
    return choose_execution(
        kind=kind,
        work_units=work_units,
        jobs=jobs,
        warm_available=warm,
        forced=forced,
    )


def _build_arena(
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    labels: tuple[str, ...],
    max_nodes: int,
    jobs: int,
) -> ScanArena:
    """Pack constraints and every level's shard plan into shared memory."""
    compiled_sigma = compile_constraints(list(sigma), labels)
    (compiled_phi,) = compile_constraints([phi], labels)
    levels = []
    for node_count in range(1, max_nodes + 1):
        total = CodeSpace.size(node_count, len(labels))
        shard_count = (
            1 if total <= MIN_SHARDED_SPACE else jobs * SHARD_FACTOR
        )
        levels.append((node_count, _plan_shards(total, shard_count)))
    return ScanArena.create(
        labels,
        [constraint_program(c) for c in compiled_sigma],
        constraint_program(compiled_phi),
        levels,
    )


# ---------------------------------------------------------------------------
# The chase engine wrapper (used by both modes).
# ---------------------------------------------------------------------------


@dataclass
class _ChaseState:
    """Bookkeeping for the proof-search engine during a race."""

    result: ImplicationResult | None = None
    stats: EngineStats | None = None
    failed: bool = False

    def absorb(self, payload: tuple[ImplicationResult, float]) -> None:
        result, elapsed = payload
        self.result = result
        steps = getattr(result.certificate, "steps", 0)
        self.stats = EngineStats(
            engine="chase",
            outcome=result.answer.value,
            candidates=steps,
            elapsed=elapsed,
        )

    def fail(self, error: BaseException | None) -> None:
        """The chase task failed every attempt; it contributes nothing."""
        self.failed = True
        self.stats = EngineStats(
            engine="chase",
            outcome="failed",
            detail=type(error).__name__ if error is not None else "",
        )

    def settle_task(self, task: SupervisedTask) -> None:
        """Absorb a settled supervised chase task, success or failure."""
        if task.failed:
            self.fail(task.error)
        else:
            self.absorb(task.result())

    @property
    def definite(self) -> bool:
        return self.result is not None and self.result.answer.is_definite


# ---------------------------------------------------------------------------
# Counter-model search: sequential and sharded-parallel drivers.
# ---------------------------------------------------------------------------


def _sequential_countermodel(
    supervisor: WorkerSupervisor,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    labels: tuple[str, ...],
    max_nodes: int,
    budget: Budget,
    cancel: CancelFlag | None = None,
) -> CountermodelOutcome:
    began = time.perf_counter()
    cancel_name = cancel.name if cancel is not None else None
    out = CountermodelOutcome(levels=tuple(range(1, max_nodes + 1)))
    for node_count in range(1, max_nodes + 1):
        space = CodeSpace(node_count, labels)
        task = supervisor.submit(
            _shard_task,
            node_count,
            labels,
            sigma,
            phi,
            0,
            space.total,
            budget.deadline,
            cancel_name,
            engine=f"countermodel[n={node_count}]",
        )
        if task.failed:
            out.exhausted = False
            out.fault_stop = True
            break
        report = task.result()
        out.examined += report.examined
        out.canonical += report.canonical
        if report.hit is not None:
            out.graph = space.to_graph(report.hit)
            break
        if not report.exhausted:
            out.exhausted = False
            break
    out.elapsed = time.perf_counter() - began
    return out


def _sharded_inline_countermodel(
    supervisor: WorkerSupervisor,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    labels: tuple[str, ...],
    max_nodes: int,
    budget: Budget,
    cancel: CancelFlag | None = None,
) -> CountermodelOutcome:
    """In-process sharded scan: chunked ranges, no pool, no pickling.

    The middle rung of the cost model — the scan is too large to run
    as one opaque call (budget checks and calibration samples happen
    per chunk, and each chunk is a supervised task so fault injection
    still applies) but too small to amortise a process pool.
    """
    began = time.perf_counter()
    cancel_name = cancel.name if cancel is not None else None
    out = CountermodelOutcome(levels=tuple(range(1, max_nodes + 1)))
    for node_count in range(1, max_nodes + 1):
        total = CodeSpace.size(node_count, len(labels))
        chunk_count = max(1, -(-total // INLINE_MAX_CODES))
        stop_level = False
        for start, stop in _plan_shards(total, chunk_count):
            task = supervisor.submit(
                _shard_task,
                node_count,
                labels,
                sigma,
                phi,
                start,
                stop,
                budget.deadline,
                cancel_name,
                engine=f"countermodel[n={node_count} {start}:{stop}]",
            )
            if task.failed:
                out.exhausted = False
                out.fault_stop = True
                stop_level = True
                break
            report = task.result()
            out.examined += report.examined
            out.canonical += report.canonical
            if report.examined and report.elapsed > 0:
                observe_untyped_scan(report.examined, report.elapsed)
            if report.hit is not None:
                space = CodeSpace(node_count, labels)
                out.graph = space.to_graph(report.hit)
                stop_level = True
                break
            if not report.exhausted:
                out.exhausted = False
                stop_level = True
                break
        if stop_level:
            break
    out.elapsed = time.perf_counter() - began
    return out


class _RaceInterrupted(Exception):
    """Raised inside the shard-combine loop when the chase wins."""


def _drain_levels(
    supervisor: WorkerSupervisor,
    labels: tuple[str, ...],
    max_nodes: int,
    budget: Budget,
    chase_task: SupervisedTask | None,
    chase_state: _ChaseState,
    arena: ScanArena,
    cancel: CancelFlag,
) -> CountermodelOutcome:
    """Run the pooled level-by-level scan off ``arena``, racing
    ``chase_task``.

    Raises :class:`_RaceInterrupted` as soon as the chase returns a
    definite answer (after cancelling pending shards) — the caller
    already holds the chase result in ``chase_state``.  All waiting
    goes through the supervisor, so worker crashes, respawns and
    degraded re-runs are invisible here: a task is either settled
    with a report, settled failed (a typed error), or cancelled.  On
    every early exit the shared cancel flag is raised first, so
    shards already running on (possibly warm) workers wind down
    instead of scanning to their range end.
    """
    began = time.perf_counter()
    out = CountermodelOutcome(levels=tuple(range(1, max_nodes + 1)))

    def stop_pending(tasks: list[SupervisedTask]) -> None:
        cancel.set()
        for task in tasks:
            supervisor.cancel(task)

    watching_chase = chase_task is not None
    for level_index in range(arena.level_count):
        node_count, shard_count = arena.level(level_index)
        tasks = [
            supervisor.submit(
                _shard_task_shm,
                arena.name,
                level_index,
                shard_index,
                budget.deadline,
                cancel.name,
                engine=(
                    f"countermodel[n={node_count} "
                    f"shm {shard_index}/{shard_count}]"
                ),
            )
            for shard_index in range(shard_count)
        ]
        # Resolve shards in range order: the winner is the hit of the
        # lowest range whose predecessors exhausted hitless — the
        # sequential scan order, whatever the completion order.
        resolved = 0
        while resolved < len(tasks):
            if watching_chase and chase_task.settled:
                watching_chase = False
                chase_state.settle_task(chase_task)
                if chase_state.definite:
                    stop_pending(tasks[resolved:])
                    out.exhausted = False
                    out.elapsed = time.perf_counter() - began
                    raise _RaceInterrupted
            task = tasks[resolved]
            if task.settled:
                if task.failed:
                    # The range is unexplored and unexplorable: same
                    # honest-UNKNOWN semantics as budget expiry, with
                    # the fault recorded by the supervisor.
                    stop_pending(tasks[resolved + 1 :])
                    out.exhausted = False
                    out.fault_stop = True
                    out.elapsed = time.perf_counter() - began
                    return out
                report = task.result()
                out.examined += report.examined
                out.canonical += report.canonical
                if report.hit is not None:
                    stop_pending(tasks[resolved + 1 :])
                    space = CodeSpace(node_count, labels)
                    out.graph = space.to_graph(report.hit)
                    out.elapsed = time.perf_counter() - began
                    return out
                if not report.exhausted:
                    # Budget expired inside this range: everything
                    # beyond it is unexplored.
                    stop_pending(tasks[resolved + 1 :])
                    out.exhausted = False
                    out.elapsed = time.perf_counter() - began
                    return out
                resolved += 1
                continue
            watch: set[SupervisedTask] = {
                t for t in tasks[resolved:] if not t.settled
            }
            if watching_chase and not chase_task.settled:
                watch.add(chase_task)
            supervisor.wait_any(watch)
    out.elapsed = time.perf_counter() - began
    return out


# ---------------------------------------------------------------------------
# Public API.
# ---------------------------------------------------------------------------


def parallel_countermodel_search(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    labels: Sequence[str] | None = None,
    max_nodes: int = 3,
    jobs: int | str = 1,
    budget: Budget | None = None,
    fault_plan: FaultPlan | None = None,
    max_respawns: int = 2,
    execution: str = "auto",
) -> CountermodelOutcome:
    """Canonical counter-model search under cost-model dispatch.

    ``jobs`` is a cap (or ``"auto"`` for the CPU count); the cost
    model picks inline, in-process sharded, or pooled execution from
    the closed-form scan size — ``execution`` forces a mode instead.
    Deterministic: returns the same counter-model as the sequential
    canonical scan for any ``jobs`` and mode (budget expiry and
    unrecoverable worker faults aside).
    """
    validate_jobs(jobs)
    validate_max_respawns(max_respawns)
    sigma = tuple(sigma)
    budget = budget or Budget()
    if labels is None:
        labels = infer_alphabet(sigma, phi)
    labels = tuple(labels)
    requested = normalize_jobs(jobs)
    decision = _decide_execution(
        "untyped",
        estimate_untyped_codes(len(labels), max_nodes),
        requested,
        execution,
    )
    pool_mode = decision.mode is ExecMode.POOL
    arena: ScanArena | None = None
    cancel: CancelFlag | None = None
    try:
        with WorkerSupervisor(
            jobs=decision.jobs if pool_mode else 1,
            budget=budget,
            plan=fault_plan,
            max_respawns=max_respawns,
        ) as supervisor:
            if pool_mode:
                arena = _build_arena(
                    sigma, phi, labels, max_nodes, decision.jobs
                )
                cancel = CancelFlag.create()
                try:
                    out = _drain_levels(
                        supervisor,
                        labels,
                        max_nodes,
                        budget,
                        None,
                        _ChaseState(),
                        arena,
                        cancel,
                    )
                finally:
                    cancel.set()
            elif decision.mode is ExecMode.SHARDED:
                out = _sharded_inline_countermodel(
                    supervisor, sigma, phi, labels, max_nodes, budget
                )
            else:
                out = _sequential_countermodel(
                    supervisor, sigma, phi, labels, max_nodes, budget
                )
                if out.examined and out.elapsed > 0:
                    observe_untyped_scan(out.examined, out.elapsed)
    finally:
        if cancel is not None:
            cancel.release()
        if arena is not None:
            arena.release()
    out.decision = decision
    return out


def parallel_find_countermodel(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    labels: Sequence[str] | None = None,
    max_nodes: int = 3,
    jobs: int | str = 1,
    budget: Budget | None = None,
    execution: str = "auto",
) -> Graph | None:
    """Like :func:`repro.reasoning.models.find_countermodel`, under
    cost-model dispatch with ``jobs`` as the parallelism cap."""
    return parallel_countermodel_search(
        sigma,
        phi,
        labels=labels,
        max_nodes=max_nodes,
        jobs=jobs,
        budget=budget,
        execution=execution,
    ).graph


def _typed_parallel(
    supervisor: WorkerSupervisor,
    schema: Schema,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    jobs: int,
    budget: Budget,
    limit: int,
    max_oids: int,
    max_set_size: int,
    chase_task: SupervisedTask | None,
    chase_state: _ChaseState,
    cancel: CancelFlag | None = None,
) -> CountermodelOutcome:
    """Stride-sharded ``U_f(Delta)`` scan racing the chase.

    Strides interleave, so every shard must finish before the minimal
    hit index is known; shards early-exit at their own first hit.  A
    shard that fails every attempt forfeits only exhaustion — a hit
    found by a surviving shard is still a sound FALSE certificate.
    """
    began = time.perf_counter()
    out = CountermodelOutcome()
    cancel_name = cancel.name if cancel is not None else None
    tasks = [
        supervisor.submit(
            _typed_shard_task,
            schema,
            sigma,
            phi,
            max_oids,
            max_set_size,
            limit,
            shard_index,
            jobs,
            budget.deadline,
            True,
            cancel_name,
            engine=f"typed-countermodel[{shard_index}/{jobs}]",
        )
        for shard_index in range(jobs)
    ]
    reports: list[TypedShardReport] = []
    failed_shards = 0
    watching_chase = chase_task is not None
    pending = set(tasks)
    while pending:
        if watching_chase and chase_task.settled:
            watching_chase = False
            chase_state.settle_task(chase_task)
            # Only a chase TRUE transfers to the typed context; FALSE
            # from an untyped fixpoint proves nothing over U_f(Delta).
            if (
                chase_state.result is not None
                and chase_state.result.answer is Trilean.TRUE
            ):
                if cancel is not None:
                    cancel.set()
                for task in pending:
                    supervisor.cancel(task)
                out.exhausted = False
                out.elapsed = time.perf_counter() - began
                raise _RaceInterrupted
        settled = {t for t in pending if t.settled}
        if not settled:
            watch = set(pending)
            if watching_chase and not chase_task.settled:
                watch.add(chase_task)
            supervisor.wait_any(watch)
            continue
        for task in settled:
            pending.discard(task)
            if task.failed:
                failed_shards += 1
            else:
                reports.append(task.result())
    out.examined = sum(r.examined for r in reports)
    out.exhausted = (
        all(r.exhausted for r in reports) and failed_shards == 0
    )
    out.fault_stop = failed_shards > 0
    hits = [r for r in reports if r.hit_index is not None]
    if hits:
        best = min(hits, key=lambda r: r.hit_index)
        out.graph = best.graph
        out.certificate = best.instance
    out.elapsed = time.perf_counter() - began
    return out


def _sequential_typed(
    supervisor: WorkerSupervisor,
    schema: Schema,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    budget: Budget,
    limit: int,
    max_oids: int,
    max_set_size: int,
    cancel: CancelFlag | None = None,
) -> CountermodelOutcome:
    task = supervisor.submit(
        _typed_shard_task,
        schema,
        sigma,
        phi,
        max_oids,
        max_set_size,
        limit,
        0,
        1,
        budget.deadline,
        True,
        cancel.name if cancel is not None else None,
        engine="typed-countermodel",
    )
    if task.failed:
        return CountermodelOutcome(exhausted=False, fault_stop=True)
    report = task.result()
    if report.examined and report.elapsed > 0:
        observe_typed_scan(report.examined, report.elapsed)
    return CountermodelOutcome(
        graph=report.graph,
        certificate=report.instance,
        examined=report.examined,
        exhausted=report.exhausted,
        elapsed=report.elapsed,
    )


def run_portfolio(
    problem,
    jobs: int | str = 1,
    budget: Budget | None = None,
    chase_steps: int = DEFAULT_CHASE_STEPS,
    countermodel_nodes: int = 3,
    typed_search_limit: int = 2_000,
    typed_max_oids: int = 2,
    typed_max_set_size: int = 2,
    max_respawns: int = 2,
    fault_plan: FaultPlan | None = None,
    execution: str = "auto",
    cancel: CancelFlag | None = None,
    max_worker_mb: int | None = None,
    memory_guard_mb: int | None = None,
) -> ImplicationResult:
    """Semi-decide an undecidable-cell implication with a portfolio.

    ``problem`` is an :class:`repro.reasoning.dispatcher
    .ImplicationProblem` in an undecidable (fragment, context) cell.
    ``jobs`` caps the parallelism (``"auto"`` means the CPU count); a
    cost model prices the scan from the closed-form ``CodeSpace`` size
    (or the typed instance limit) against measured scan rates and pool
    overheads, then runs the engines sequentially in-process, as an
    in-process sharded scan, or as a race across a supervised process
    pool with first-winner cancellation — whichever is estimated
    fastest, so ``jobs > 1`` never loses to ``jobs = 1`` by paying
    pool overhead a small scan cannot amortise.  ``execution`` forces
    a mode (``"inline"``/``"sharded"``/``"pool"``) instead.  Pool
    shards read their payload from a shared-memory arena; worker
    crashes are respawned at most ``max_respawns`` times before
    degrading to in-process execution; ``fault_plan`` (default: the
    ``$REPRO_INJECT`` environment spec) enables deterministic fault
    injection.  Every returned result carries per-engine
    :class:`EngineStats`, a
    :class:`~repro.reasoning.result.FaultReport`, and the
    :class:`~repro.reasoning.costmodel.ExecutionDecision` on
    ``result.execution``.

    ``cancel`` is an optional caller-owned
    :class:`~repro.reasoning.shm.CancelFlag`: every scan and chase of
    this run polls it, so an embedding service (the daemon's hung-
    solve watchdog) can cooperatively abort the solve from outside.
    The caller keeps ownership — the flag is never released here.
    ``max_worker_mb`` installs an ``RLIMIT_AS`` ceiling in every pool
    worker; ``memory_guard_mb`` is the parent-side guard: when this
    process's RSS is already past it, pooled execution (which would
    fork more memory-hungry workers) degrades to the in-process
    sharded scan before the box starts swapping.
    """
    # Imported here: dispatcher imports this module's Budget/run_portfolio.
    from repro.reasoning.dispatcher import Context, classify

    validate_jobs(jobs)
    validate_max_respawns(max_respawns)
    budget = budget or Budget()
    plan = fault_plan if fault_plan is not None else plan_from_env()
    sigma = tuple(problem.sigma)
    phi = problem.phi
    context = problem.context
    problem_class = classify(sigma, phi)
    labels = infer_alphabet(sigma, phi)
    untyped = context is Context.SEMISTRUCTURED
    requested = normalize_jobs(jobs)
    if untyped:
        decision = _decide_execution(
            "untyped",
            estimate_untyped_codes(len(labels), countermodel_nodes),
            requested,
            execution,
        )
    else:
        decision = _decide_execution(
            "typed", typed_search_limit, requested, execution
        )
    guard_note = None
    if memory_guard_mb is not None and decision.mode is ExecMode.POOL:
        rss = current_rss_mb()
        if rss is not None and rss >= memory_guard_mb:
            # Forking pool workers duplicates this process's footprint;
            # past the guard that risks swapping the whole box.  The
            # in-process sharded scan costs no extra resident memory.
            guard_note = (
                f"memory guard: parent rss {rss:.0f} MiB >= "
                f"{memory_guard_mb} MiB; pooled execution degraded to "
                "in-process sharded scan"
            )
            decision = replace(
                decision,
                mode=ExecMode.SHARDED,
                reason=guard_note,
                forced=True,
            )
    notes = [
        f"{problem_class.value} over {context.value}: undecidable "
        "problem class; semi-decision with explicit budgets",
        f"portfolio: jobs={requested}, "
        + (
            f"deadline in {budget.remaining():.3f}s"
            if budget.deadline is not None
            else "no deadline"
        ),
        f"execution: {decision.describe()}",
    ]
    if guard_note is not None:
        notes.append(guard_note)
    if plan.active:
        notes.append(f"fault injection active: {plan.describe()}")

    pool_mode = decision.mode is ExecMode.POOL
    arena: ScanArena | None = None
    owned_cancel = False
    try:
        if pool_mode:
            if cancel is None:
                cancel = CancelFlag.create()
                owned_cancel = True
            if untyped:
                arena = _build_arena(
                    sigma, phi, labels, countermodel_nodes, decision.jobs
                )
        with WorkerSupervisor(
            jobs=decision.jobs if pool_mode else 1,
            budget=budget,
            plan=plan,
            max_respawns=max_respawns,
            max_worker_mb=max_worker_mb,
        ) as supervisor:
            try:
                result = _portfolio_race(
                    problem,
                    supervisor,
                    decision,
                    sigma,
                    phi,
                    labels,
                    untyped,
                    budget,
                    chase_steps,
                    countermodel_nodes,
                    typed_search_limit,
                    typed_max_oids,
                    typed_max_set_size,
                    notes,
                    arena,
                    cancel,
                )
            finally:
                # Decided (or aborted): stragglers on a warm pool must
                # wind down before the next solve leases it.  Setting a
                # caller-owned flag here is safe (the solve is over);
                # only releasing it is the owner's call.
                if cancel is not None:
                    cancel.set()
    finally:
        if owned_cancel:
            cancel.release()
        if arena is not None:
            arena.release()
    result.execution = decision
    return result


def _portfolio_race(
    problem,
    supervisor: WorkerSupervisor,
    decision: ExecutionDecision,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    labels: tuple[str, ...],
    untyped: bool,
    budget: Budget,
    chase_steps: int,
    countermodel_nodes: int,
    typed_search_limit: int,
    typed_max_oids: int,
    typed_max_set_size: int,
    notes: list[str],
    arena: ScanArena | None,
    cancel: CancelFlag | None,
) -> ImplicationResult:
    """The race itself, inside an already-configured supervisor."""
    jobs = decision.jobs
    chase_state = _ChaseState()
    chase_task = supervisor.submit(
        _chase_task,
        sigma,
        phi,
        chase_steps,
        budget.deadline,
        cancel.name if cancel is not None else None,
        engine="chase",
    )
    if supervisor.inline:
        # Sequential pipeline: the chase already ran synchronously.
        chase_state.settle_task(chase_task)
        if untyped and chase_state.definite:
            return _finish_chase_win(
                chase_state, notes, untyped=True, supervisor=supervisor
            )
        if (
            not untyped
            and chase_state.result is not None
            and chase_state.result.answer is Trilean.TRUE
        ):
            return _finish_chase_win(
                chase_state, notes, untyped=False, supervisor=supervisor
            )
        if untyped:
            if decision.mode is ExecMode.SHARDED:
                search = _sharded_inline_countermodel(
                    supervisor,
                    sigma,
                    phi,
                    labels,
                    countermodel_nodes,
                    budget,
                    cancel,
                )
            else:
                search = _sequential_countermodel(
                    supervisor,
                    sigma,
                    phi,
                    labels,
                    countermodel_nodes,
                    budget,
                    cancel,
                )
                if search.examined and search.elapsed > 0:
                    observe_untyped_scan(search.examined, search.elapsed)
        else:
            search = _sequential_typed(
                supervisor,
                problem.schema,
                sigma,
                phi,
                budget,
                typed_search_limit,
                typed_max_oids,
                typed_max_set_size,
                cancel,
            )
        return _combine(
            chase_state,
            search,
            notes,
            untyped,
            countermodel_nodes,
            jobs,
            supervisor,
        )

    try:
        if untyped:
            search = _drain_levels(
                supervisor,
                labels,
                countermodel_nodes,
                budget,
                chase_task,
                chase_state,
                arena,
                cancel,
            )
        else:
            search = _typed_parallel(
                supervisor,
                problem.schema,
                sigma,
                phi,
                jobs,
                budget,
                typed_search_limit,
                typed_max_oids,
                typed_max_set_size,
                chase_task,
                chase_state,
                cancel,
            )
    except _RaceInterrupted:
        return _finish_chase_win(
            chase_state, notes, untyped, supervisor
        )
    if search.graph is not None:
        # Refutation certificate in hand; the chase can stop.
        if cancel is not None:
            cancel.set()
        supervisor.cancel(chase_task)
    elif chase_state.result is None and not chase_state.failed:
        # Search exhausted/budgeted/faulted without the chase
        # finishing: its verdict is the only hope left, so wait.
        supervisor.wait_any({chase_task})
        if chase_task.settled and not chase_task.cancelled:
            chase_state.settle_task(chase_task)
            if untyped and chase_state.definite:
                return _finish_chase_win(
                    chase_state,
                    notes,
                    untyped=True,
                    supervisor=supervisor,
                )
            if (
                not untyped
                and chase_state.result is not None
                and chase_state.result.answer is Trilean.TRUE
            ):
                return _finish_chase_win(
                    chase_state,
                    notes,
                    untyped=False,
                    supervisor=supervisor,
                )
    return _combine(
        chase_state,
        search,
        notes,
        untyped,
        countermodel_nodes,
        jobs,
        supervisor,
    )


def _search_stats(
    search: CountermodelOutcome, untyped: bool, jobs: int
) -> EngineStats:
    engine = "countermodel" if untyped else "typed-countermodel"
    detail = f"jobs={jobs}"
    if untyped:
        detail += f", canonical={search.canonical}"
    return EngineStats(
        engine=engine,
        outcome=search.outcome_label,
        candidates=search.examined,
        elapsed=search.elapsed,
        detail=detail,
    )


def _collect_stats(
    chase_state: _ChaseState, search_stats: EngineStats | None
) -> tuple[EngineStats, ...]:
    stats = []
    if chase_state.stats is not None:
        stats.append(chase_state.stats)
    else:
        stats.append(
            EngineStats(engine="chase", outcome="cancelled")
        )
    if search_stats is not None:
        stats.append(search_stats)
    return tuple(stats)


def _finish_chase_win(
    chase_state: _ChaseState,
    notes: list[str],
    untyped: bool,
    supervisor: WorkerSupervisor,
) -> ImplicationResult:
    chased = chase_state.result
    stats = _collect_stats(chase_state, None)
    faults = supervisor.fault_report(answered_by="chase")
    if untyped:
        chased.notes = tuple(notes) + chased.notes
        chased.stats = stats
        chased.faults = faults
        return chased
    # Typed context: only TRUE lands here, and it transfers because
    # U(Delta) is a subclass of all structures.
    return ImplicationResult(
        answer=Trilean.TRUE,
        method="chase(untyped, transfers)",
        decidable=False,
        certificate=chased.certificate,
        notes=tuple(notes),
        stats=stats,
        faults=faults,
    )


def _combine(
    chase_state: _ChaseState,
    search: CountermodelOutcome,
    notes: list[str],
    untyped: bool,
    countermodel_nodes: int,
    jobs: int,
    supervisor: WorkerSupervisor,
) -> ImplicationResult:
    stats = _collect_stats(chase_state, _search_stats(search, untyped, jobs))
    if search.graph is not None:
        answered_by = "countermodel" if untyped else "typed-countermodel"
        faults = supervisor.fault_report(answered_by=answered_by)
        if untyped:
            return ImplicationResult(
                answer=Trilean.FALSE,
                method="bounded-countermodel",
                decidable=False,
                countermodel=search.graph,
                notes=tuple(notes),
                stats=stats,
                faults=faults,
            )
        return ImplicationResult(
            answer=Trilean.FALSE,
            method="typed-instance-countermodel",
            decidable=False,
            countermodel=search.graph,
            certificate=search.certificate,
            notes=tuple(notes),
            stats=stats,
            faults=faults,
        )
    if search.fault_stop:
        notes = notes + [
            "countermodel search truncated by an unrecoverable worker "
            "fault; the unexplored region is treated like budget expiry"
        ]
    elif untyped and not search.exhausted:
        notes = notes + [
            f"countermodel search stopped by budget before exhausting "
            f"{countermodel_nodes}-node bound"
        ]
    if chase_state.failed:
        notes = notes + [
            "chase engine failed every attempt; its verdict is forfeit"
        ]
    chased = chase_state.result
    extra = chased.notes if chased is not None else ()
    method = (
        "chase+bounded-countermodel" if untyped else "chase+typed-countermodel"
    )
    return ImplicationResult(
        answer=Trilean.UNKNOWN,
        method=method,
        decidable=False,
        notes=tuple(notes) + tuple(extra),
        stats=stats,
        faults=supervisor.fault_report(),
    )
