"""Parallel portfolio semi-decision: proof search races refutation.

The undecidable cells of Table 1 are served by semi-decision — the
chase (sound for TRUE, and for FALSE when it reaches a fixpoint) races
bounded counter-model search (sound for FALSE).  The seed ran the two
engines sequentially; this module runs them as a *portfolio* across a
process pool:

* the chase runs as one pool task;
* counter-model search is sharded by bit-prefix over the canonical
  code space of :mod:`repro.reasoning.models` — each worker scans a
  contiguous code range (level by node count, levels in order);
* typed contexts shard the ``U_f(Delta)`` instance stream by stride
  instead;
* the first engine to produce a *definite* certificate wins, pending
  work is cancelled, and per-engine statistics (candidates examined,
  elapsed time, outcome) are surfaced on the returned
  :class:`ImplicationResult`.

Every pool interaction goes through a
:class:`~repro.reasoning.runtime.WorkerSupervisor`: a worker crash
(segfault, OOM-kill, ``os._exit``), a payload that cannot pickle, or
a task that raises mid-engine never surfaces as a bare
``BrokenProcessPool``.  The supervisor respawns the pool with capped
backoff, resubmits lost shards from their ``(start, stop)`` ranges,
degrades to in-process execution when respawns are exhausted, and
records every event in the result's ``faults`` field.  Soundness is
structural: TRUE/FALSE always rides on an independently verifiable
certificate, so infrastructure failure can only ever demote an answer
to UNKNOWN, never flip it.

Determinism: the counter-model engine's answer is a function of the
instance alone, not of scheduling.  Shards report the smallest hit in
their range; the combiner takes the hit of the lowest range whose
predecessors exhausted hitless, which is exactly the sequential scan
order.  So ``--jobs 1`` and ``--jobs 4`` return the same counter-model
(deadline expiry and worker faults aside — a budget stop or a
degraded-and-still-failing shard is reported as UNKNOWN either way,
but *which* candidates were reached may differ).

Budgets: a :class:`Budget` carries one absolute ``time.monotonic()``
deadline shared by every engine and shard; expiry turns whichever
scans are still running into honest UNKNOWN contributions.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.constraints.ast import PathConstraint
from repro.graph.structure import Graph
from repro.reasoning.chase import DEFAULT_CHASE_STEPS, chase_implication
from repro.reasoning.faultinject import FaultPlan, plan_from_env
from repro.reasoning.models import (
    CodeSpace,
    ShardReport,
    TypedShardReport,
    infer_alphabet,
    scan_codes,
    scan_typed_instances,
)
from repro.reasoning.result import EngineStats, ImplicationResult
from repro.reasoning.runtime import Budget, SupervisedTask, WorkerSupervisor
from repro.truth import Trilean
from repro.types.typesys import Schema

__all__ = [
    "Budget",
    "CountermodelOutcome",
    "parallel_countermodel_search",
    "parallel_find_countermodel",
    "run_portfolio",
]

#: Shards per enumeration level, as a multiple of the worker count —
#: finer than the pool so a winner can cancel still-pending ranges.
SHARD_FACTOR = 4

#: A level this small is scanned as a single shard (pool overhead
#: would dominate).
MIN_SHARDED_SPACE = 4096


@dataclass
class CountermodelOutcome:
    """Aggregate of an (un)typed counter-model search run."""

    graph: Graph | None = None
    certificate: object = None
    examined: int = 0
    canonical: int = 0
    exhausted: bool = True
    elapsed: float = 0.0
    levels: tuple[int, ...] = ()
    #: True when the scan was truncated by an unrecoverable worker
    #: fault rather than by the budget — same UNKNOWN semantics, but
    #: callers report it differently.
    fault_stop: bool = False

    @property
    def outcome_label(self) -> str:
        if self.graph is not None:
            return "hit"
        if self.fault_stop:
            return "faulted"
        return "exhausted" if self.exhausted else "budget"


# ---------------------------------------------------------------------------
# Pool tasks (top-level, picklable).
# ---------------------------------------------------------------------------


def _chase_task(
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    max_steps: int,
    deadline: float | None,
) -> tuple[ImplicationResult, float]:
    began = time.perf_counter()
    result = chase_implication(
        sigma, phi, max_steps=max_steps, deadline=deadline
    )
    return result, time.perf_counter() - began


def _shard_task(
    node_count: int,
    labels: tuple[str, ...],
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    start: int,
    stop: int,
    deadline: float | None,
) -> ShardReport:
    space = CodeSpace(node_count, labels)
    return scan_codes(space, sigma, phi, start, stop, deadline=deadline)


def _typed_shard_task(
    schema: Schema,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    max_oids: int,
    max_set_size: int,
    limit: int,
    shard_index: int,
    shard_count: int,
    deadline: float | None,
) -> TypedShardReport:
    return scan_typed_instances(
        schema,
        sigma,
        phi,
        max_oids=max_oids,
        max_set_size=max_set_size,
        limit=limit,
        shard_index=shard_index,
        shard_count=shard_count,
        deadline=deadline,
    )


def _plan_shards(total: int, shard_count: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into contiguous bit-prefix ranges."""
    shard_count = max(1, min(shard_count, total))
    width, remainder = divmod(total, shard_count)
    ranges = []
    start = 0
    for i in range(shard_count):
        stop = start + width + (1 if i < remainder else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


# ---------------------------------------------------------------------------
# The chase engine wrapper (used by both modes).
# ---------------------------------------------------------------------------


@dataclass
class _ChaseState:
    """Bookkeeping for the proof-search engine during a race."""

    result: ImplicationResult | None = None
    stats: EngineStats | None = None
    failed: bool = False

    def absorb(self, payload: tuple[ImplicationResult, float]) -> None:
        result, elapsed = payload
        self.result = result
        steps = getattr(result.certificate, "steps", 0)
        self.stats = EngineStats(
            engine="chase",
            outcome=result.answer.value,
            candidates=steps,
            elapsed=elapsed,
        )

    def fail(self, error: BaseException | None) -> None:
        """The chase task failed every attempt; it contributes nothing."""
        self.failed = True
        self.stats = EngineStats(
            engine="chase",
            outcome="failed",
            detail=type(error).__name__ if error is not None else "",
        )

    def settle_task(self, task: SupervisedTask) -> None:
        """Absorb a settled supervised chase task, success or failure."""
        if task.failed:
            self.fail(task.error)
        else:
            self.absorb(task.result())

    @property
    def definite(self) -> bool:
        return self.result is not None and self.result.answer.is_definite


# ---------------------------------------------------------------------------
# Counter-model search: sequential and sharded-parallel drivers.
# ---------------------------------------------------------------------------


def _sequential_countermodel(
    supervisor: WorkerSupervisor,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    labels: tuple[str, ...],
    max_nodes: int,
    budget: Budget,
) -> CountermodelOutcome:
    began = time.perf_counter()
    out = CountermodelOutcome(levels=tuple(range(1, max_nodes + 1)))
    for node_count in range(1, max_nodes + 1):
        space = CodeSpace(node_count, labels)
        task = supervisor.submit(
            _shard_task,
            node_count,
            labels,
            sigma,
            phi,
            0,
            space.total,
            budget.deadline,
            engine=f"countermodel[n={node_count}]",
        )
        if task.failed:
            out.exhausted = False
            out.fault_stop = True
            break
        report = task.result()
        out.examined += report.examined
        out.canonical += report.canonical
        if report.hit is not None:
            out.graph = space.to_graph(report.hit)
            break
        if not report.exhausted:
            out.exhausted = False
            break
    out.elapsed = time.perf_counter() - began
    return out


class _RaceInterrupted(Exception):
    """Raised inside the shard-combine loop when the chase wins."""


def _drain_levels(
    supervisor: WorkerSupervisor,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    labels: tuple[str, ...],
    max_nodes: int,
    jobs: int,
    budget: Budget,
    chase_task: SupervisedTask | None,
    chase_state: _ChaseState,
) -> CountermodelOutcome:
    """Run the sharded level-by-level scan, racing ``chase_task``.

    Raises :class:`_RaceInterrupted` as soon as the chase returns a
    definite answer (after cancelling pending shards) — the caller
    already holds the chase result in ``chase_state``.  All waiting
    goes through the supervisor, so worker crashes, respawns and
    degraded re-runs are invisible here: a task is either settled
    with a report, settled failed (a typed error), or cancelled.
    """
    began = time.perf_counter()
    out = CountermodelOutcome(levels=tuple(range(1, max_nodes + 1)))

    watching_chase = chase_task is not None
    for node_count in range(1, max_nodes + 1):
        space = CodeSpace(node_count, labels)
        shard_count = (
            1
            if space.total <= MIN_SHARDED_SPACE
            else jobs * SHARD_FACTOR
        )
        ranges = _plan_shards(space.total, shard_count)
        tasks = [
            supervisor.submit(
                _shard_task,
                node_count,
                labels,
                sigma,
                phi,
                start,
                stop,
                budget.deadline,
                engine=f"countermodel[n={node_count} {start}:{stop}]",
            )
            for start, stop in ranges
        ]
        # Resolve shards in range order: the winner is the hit of the
        # lowest range whose predecessors exhausted hitless — the
        # sequential scan order, whatever the completion order.
        resolved = 0
        while resolved < len(tasks):
            if watching_chase and chase_task.settled:
                watching_chase = False
                chase_state.settle_task(chase_task)
                if chase_state.definite:
                    for task in tasks[resolved:]:
                        supervisor.cancel(task)
                    out.exhausted = False
                    out.elapsed = time.perf_counter() - began
                    raise _RaceInterrupted
            task = tasks[resolved]
            if task.settled:
                if task.failed:
                    # The range is unexplored and unexplorable: same
                    # honest-UNKNOWN semantics as budget expiry, with
                    # the fault recorded by the supervisor.
                    for later in tasks[resolved + 1 :]:
                        supervisor.cancel(later)
                    out.exhausted = False
                    out.fault_stop = True
                    out.elapsed = time.perf_counter() - began
                    return out
                report = task.result()
                out.examined += report.examined
                out.canonical += report.canonical
                if report.hit is not None:
                    for later in tasks[resolved + 1 :]:
                        supervisor.cancel(later)
                    out.graph = space.to_graph(report.hit)
                    out.elapsed = time.perf_counter() - began
                    return out
                if not report.exhausted:
                    # Budget expired inside this range: everything
                    # beyond it is unexplored.
                    for later in tasks[resolved + 1 :]:
                        supervisor.cancel(later)
                    out.exhausted = False
                    out.elapsed = time.perf_counter() - began
                    return out
                resolved += 1
                continue
            watch: set[SupervisedTask] = {
                t for t in tasks[resolved:] if not t.settled
            }
            if watching_chase and not chase_task.settled:
                watch.add(chase_task)
            supervisor.wait_any(watch)
    out.elapsed = time.perf_counter() - began
    return out


# ---------------------------------------------------------------------------
# Public API.
# ---------------------------------------------------------------------------


def parallel_countermodel_search(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    labels: Sequence[str] | None = None,
    max_nodes: int = 3,
    jobs: int = 1,
    budget: Budget | None = None,
    fault_plan: FaultPlan | None = None,
    max_respawns: int = 2,
) -> CountermodelOutcome:
    """Canonical counter-model search, sharded across ``jobs`` workers.

    Deterministic: returns the same counter-model as the sequential
    canonical scan for any ``jobs`` (budget expiry and unrecoverable
    worker faults aside).  With ``jobs <= 1`` no pool is created at
    all.
    """
    sigma = tuple(sigma)
    budget = budget or Budget()
    if labels is None:
        labels = infer_alphabet(sigma, phi)
    labels = tuple(labels)
    with WorkerSupervisor(
        jobs=jobs,
        budget=budget,
        plan=fault_plan,
        max_respawns=max_respawns,
    ) as supervisor:
        if supervisor.inline:
            return _sequential_countermodel(
                supervisor, sigma, phi, labels, max_nodes, budget
            )
        return _drain_levels(
            supervisor,
            sigma,
            phi,
            labels,
            max_nodes,
            jobs,
            budget,
            chase_task=None,
            chase_state=_ChaseState(),
        )


def parallel_find_countermodel(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    labels: Sequence[str] | None = None,
    max_nodes: int = 3,
    jobs: int = 1,
    budget: Budget | None = None,
) -> Graph | None:
    """Like :func:`repro.reasoning.models.find_countermodel`, sharded
    across ``jobs`` worker processes."""
    return parallel_countermodel_search(
        sigma, phi, labels=labels, max_nodes=max_nodes, jobs=jobs, budget=budget
    ).graph


def _typed_parallel(
    supervisor: WorkerSupervisor,
    schema: Schema,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    jobs: int,
    budget: Budget,
    limit: int,
    max_oids: int,
    max_set_size: int,
    chase_task: SupervisedTask | None,
    chase_state: _ChaseState,
) -> CountermodelOutcome:
    """Stride-sharded ``U_f(Delta)`` scan racing the chase.

    Strides interleave, so every shard must finish before the minimal
    hit index is known; shards early-exit at their own first hit.  A
    shard that fails every attempt forfeits only exhaustion — a hit
    found by a surviving shard is still a sound FALSE certificate.
    """
    began = time.perf_counter()
    out = CountermodelOutcome()
    tasks = [
        supervisor.submit(
            _typed_shard_task,
            schema,
            sigma,
            phi,
            max_oids,
            max_set_size,
            limit,
            shard_index,
            jobs,
            budget.deadline,
            engine=f"typed-countermodel[{shard_index}/{jobs}]",
        )
        for shard_index in range(jobs)
    ]
    reports: list[TypedShardReport] = []
    failed_shards = 0
    watching_chase = chase_task is not None
    pending = set(tasks)
    while pending:
        if watching_chase and chase_task.settled:
            watching_chase = False
            chase_state.settle_task(chase_task)
            # Only a chase TRUE transfers to the typed context; FALSE
            # from an untyped fixpoint proves nothing over U_f(Delta).
            if (
                chase_state.result is not None
                and chase_state.result.answer is Trilean.TRUE
            ):
                for task in pending:
                    supervisor.cancel(task)
                out.exhausted = False
                out.elapsed = time.perf_counter() - began
                raise _RaceInterrupted
        settled = {t for t in pending if t.settled}
        if not settled:
            watch = set(pending)
            if watching_chase and not chase_task.settled:
                watch.add(chase_task)
            supervisor.wait_any(watch)
            continue
        for task in settled:
            pending.discard(task)
            if task.failed:
                failed_shards += 1
            else:
                reports.append(task.result())
    out.examined = sum(r.examined for r in reports)
    out.exhausted = (
        all(r.exhausted for r in reports) and failed_shards == 0
    )
    out.fault_stop = failed_shards > 0
    hits = [r for r in reports if r.hit_index is not None]
    if hits:
        best = min(hits, key=lambda r: r.hit_index)
        out.graph = best.graph
        out.certificate = best.instance
    out.elapsed = time.perf_counter() - began
    return out


def _sequential_typed(
    supervisor: WorkerSupervisor,
    schema: Schema,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    budget: Budget,
    limit: int,
    max_oids: int,
    max_set_size: int,
) -> CountermodelOutcome:
    task = supervisor.submit(
        _typed_shard_task,
        schema,
        sigma,
        phi,
        max_oids,
        max_set_size,
        limit,
        0,
        1,
        budget.deadline,
        engine="typed-countermodel",
    )
    if task.failed:
        return CountermodelOutcome(exhausted=False, fault_stop=True)
    report = task.result()
    return CountermodelOutcome(
        graph=report.graph,
        certificate=report.instance,
        examined=report.examined,
        exhausted=report.exhausted,
        elapsed=report.elapsed,
    )


def run_portfolio(
    problem,
    jobs: int = 1,
    budget: Budget | None = None,
    chase_steps: int = DEFAULT_CHASE_STEPS,
    countermodel_nodes: int = 3,
    typed_search_limit: int = 2_000,
    typed_max_oids: int = 2,
    typed_max_set_size: int = 2,
    max_respawns: int = 2,
    fault_plan: FaultPlan | None = None,
) -> ImplicationResult:
    """Semi-decide an undecidable-cell implication with a portfolio.

    ``problem`` is an :class:`repro.reasoning.dispatcher
    .ImplicationProblem` in an undecidable (fragment, context) cell.
    With ``jobs <= 1`` the engines run sequentially in-process (chase
    first, then counter-model search — the seed pipeline); with
    ``jobs > 1`` they race across a supervised process pool with
    first-winner cancellation.  Worker crashes are respawned at most
    ``max_respawns`` times before degrading to in-process execution;
    ``fault_plan`` (default: the ``$REPRO_INJECT`` environment spec)
    enables deterministic fault injection.  Every returned result
    carries per-engine :class:`EngineStats` and a
    :class:`~repro.reasoning.result.FaultReport`.
    """
    # Imported here: dispatcher imports this module's Budget/run_portfolio.
    from repro.reasoning.dispatcher import Context, classify

    budget = budget or Budget()
    plan = fault_plan if fault_plan is not None else plan_from_env()
    sigma = tuple(problem.sigma)
    phi = problem.phi
    context = problem.context
    problem_class = classify(sigma, phi)
    labels = infer_alphabet(sigma, phi)
    notes = [
        f"{problem_class.value} over {context.value}: undecidable "
        "problem class; semi-decision with explicit budgets",
        f"portfolio: jobs={jobs}, "
        + (
            f"deadline in {budget.remaining():.3f}s"
            if budget.deadline is not None
            else "no deadline"
        ),
    ]
    if plan.active:
        notes.append(f"fault injection active: {plan.describe()}")
    untyped = context is Context.SEMISTRUCTURED

    chase_state = _ChaseState()
    with WorkerSupervisor(
        jobs=jobs,
        budget=budget,
        plan=plan,
        max_respawns=max_respawns,
    ) as supervisor:
        chase_task = supervisor.submit(
            _chase_task,
            sigma,
            phi,
            chase_steps,
            budget.deadline,
            engine="chase",
        )
        if supervisor.inline:
            # Sequential pipeline: the chase already ran synchronously.
            chase_state.settle_task(chase_task)
            if untyped and chase_state.definite:
                return _finish_chase_win(
                    chase_state, notes, untyped=True, supervisor=supervisor
                )
            if (
                not untyped
                and chase_state.result is not None
                and chase_state.result.answer is Trilean.TRUE
            ):
                return _finish_chase_win(
                    chase_state, notes, untyped=False, supervisor=supervisor
                )
            if untyped:
                search = _sequential_countermodel(
                    supervisor, sigma, phi, labels, countermodel_nodes, budget
                )
            else:
                search = _sequential_typed(
                    supervisor,
                    problem.schema,
                    sigma,
                    phi,
                    budget,
                    typed_search_limit,
                    typed_max_oids,
                    typed_max_set_size,
                )
            return _combine(
                chase_state,
                search,
                notes,
                untyped,
                countermodel_nodes,
                jobs,
                supervisor,
            )

        try:
            if untyped:
                search = _drain_levels(
                    supervisor,
                    sigma,
                    phi,
                    labels,
                    countermodel_nodes,
                    jobs,
                    budget,
                    chase_task,
                    chase_state,
                )
            else:
                search = _typed_parallel(
                    supervisor,
                    problem.schema,
                    sigma,
                    phi,
                    jobs,
                    budget,
                    typed_search_limit,
                    typed_max_oids,
                    typed_max_set_size,
                    chase_task,
                    chase_state,
                )
        except _RaceInterrupted:
            return _finish_chase_win(
                chase_state, notes, untyped, supervisor
            )
        if search.graph is not None:
            # Refutation certificate in hand; the chase can stop.
            supervisor.cancel(chase_task)
        elif chase_state.result is None and not chase_state.failed:
            # Search exhausted/budgeted/faulted without the chase
            # finishing: its verdict is the only hope left, so wait.
            supervisor.wait_any({chase_task})
            if chase_task.settled and not chase_task.cancelled:
                chase_state.settle_task(chase_task)
                if untyped and chase_state.definite:
                    return _finish_chase_win(
                        chase_state,
                        notes,
                        untyped=True,
                        supervisor=supervisor,
                    )
                if (
                    not untyped
                    and chase_state.result is not None
                    and chase_state.result.answer is Trilean.TRUE
                ):
                    return _finish_chase_win(
                        chase_state,
                        notes,
                        untyped=False,
                        supervisor=supervisor,
                    )
        return _combine(
            chase_state,
            search,
            notes,
            untyped,
            countermodel_nodes,
            jobs,
            supervisor,
        )


def _search_stats(
    search: CountermodelOutcome, untyped: bool, jobs: int
) -> EngineStats:
    engine = "countermodel" if untyped else "typed-countermodel"
    detail = f"jobs={jobs}"
    if untyped:
        detail += f", canonical={search.canonical}"
    return EngineStats(
        engine=engine,
        outcome=search.outcome_label,
        candidates=search.examined,
        elapsed=search.elapsed,
        detail=detail,
    )


def _collect_stats(
    chase_state: _ChaseState, search_stats: EngineStats | None
) -> tuple[EngineStats, ...]:
    stats = []
    if chase_state.stats is not None:
        stats.append(chase_state.stats)
    else:
        stats.append(
            EngineStats(engine="chase", outcome="cancelled")
        )
    if search_stats is not None:
        stats.append(search_stats)
    return tuple(stats)


def _finish_chase_win(
    chase_state: _ChaseState,
    notes: list[str],
    untyped: bool,
    supervisor: WorkerSupervisor,
) -> ImplicationResult:
    chased = chase_state.result
    stats = _collect_stats(chase_state, None)
    faults = supervisor.fault_report(answered_by="chase")
    if untyped:
        chased.notes = tuple(notes) + chased.notes
        chased.stats = stats
        chased.faults = faults
        return chased
    # Typed context: only TRUE lands here, and it transfers because
    # U(Delta) is a subclass of all structures.
    return ImplicationResult(
        answer=Trilean.TRUE,
        method="chase(untyped, transfers)",
        decidable=False,
        certificate=chased.certificate,
        notes=tuple(notes),
        stats=stats,
        faults=faults,
    )


def _combine(
    chase_state: _ChaseState,
    search: CountermodelOutcome,
    notes: list[str],
    untyped: bool,
    countermodel_nodes: int,
    jobs: int,
    supervisor: WorkerSupervisor,
) -> ImplicationResult:
    stats = _collect_stats(chase_state, _search_stats(search, untyped, jobs))
    if search.graph is not None:
        answered_by = "countermodel" if untyped else "typed-countermodel"
        faults = supervisor.fault_report(answered_by=answered_by)
        if untyped:
            return ImplicationResult(
                answer=Trilean.FALSE,
                method="bounded-countermodel",
                decidable=False,
                countermodel=search.graph,
                notes=tuple(notes),
                stats=stats,
                faults=faults,
            )
        return ImplicationResult(
            answer=Trilean.FALSE,
            method="typed-instance-countermodel",
            decidable=False,
            countermodel=search.graph,
            certificate=search.certificate,
            notes=tuple(notes),
            stats=stats,
            faults=faults,
        )
    if search.fault_stop:
        notes = notes + [
            "countermodel search truncated by an unrecoverable worker "
            "fault; the unexplored region is treated like budget expiry"
        ]
    elif untyped and not search.exhausted:
        notes = notes + [
            f"countermodel search stopped by budget before exhausting "
            f"{countermodel_nodes}-node bound"
        ]
    if chase_state.failed:
        notes = notes + [
            "chase engine failed every attempt; its verdict is forfeit"
        ]
    chased = chase_state.result
    extra = chased.notes if chased is not None else ()
    method = (
        "chase+bounded-countermodel" if untyped else "chase+typed-countermodel"
    )
    return ImplicationResult(
        answer=Trilean.UNKNOWN,
        method=method,
        decidable=False,
        notes=tuple(notes) + tuple(extra),
        stats=stats,
        faults=supervisor.fault_report(),
    )
