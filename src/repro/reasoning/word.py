"""Untyped word-constraint implication — decidable in PTIME.

[AV97] showed the implication and finite implication problems for P_w
coincide and are decidable in PTIME, with {reflexivity, transitivity,
right-congruence} as a complete axiomatization (restated in
Section 4.2 of the paper).  Derivability under those three rules is
exactly prefix-rewriting reachability, so the decider asks the
``post*`` saturation engine whether ``phi.rhs`` is reachable from
``phi.lhs`` under the rules ``{lhs_i -> rhs_i}``.

**Empty conclusions are a genuinely different fragment.**  A
constraint ``u => ()`` is equality-generating: every node reached by
``u`` *is* the root.  Such constraints break the three-rule
completeness — ``{a => ()}`` semantically implies ``a => a.a``, which
no prefix-rewriting derivation produces — because node merges create
root-loop facts that propagate through rewriting-congruent words.
The paper's own instances never use empty conclusions (Definition 2.3
even forbids empty hypotheses in bounded constraints), so this decider
guarantees completeness exactly on the empty-conclusion-free fragment
and handles the rest with a sound layered strategy:

1. *trigger closure* — if ``post*(alpha)`` realizes a word extending
   an equality-generating ``u``, the node at its end is the root, so
   the root carries a ``u``-loop and ``() => u`` becomes sound in the
   context of the query; iterate to a fixpoint (polynomial);
2. *chase fallback* — when the closure does not already answer True,
   chase the query tableau (sound in both directions, may diverge);
3. *honest failure* — if the chase is also indefinite, raise
   :class:`repro.errors.IncompleteFragmentError` rather than guess.

Positive answers within the three-rule fragment come with an I_r
proof extracted from an explicit rewrite derivation and re-verified by
the independent proof checker; closure- or chase-dependent answers
have no three-rule proof and return ``proof=None``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.constraints.ast import PathConstraint, word
from repro.paths import Path
from repro.reasoning.axioms import IrProof, ProofBuilder, check_proof
from repro.reasoning.result import ImplicationResult
from repro.rewriting.prefix import PrefixRewriteSystem, RewriteStep
from repro.truth import Trilean

#: Step budget for the equality-generating chase fallback when the
#: caller does not supply one.  Callers with their own budget (the
#: dispatcher, the fuzz harness) pass ``chase_steps`` explicitly.
EGD_FALLBACK_CHASE_STEPS = 4_000


def _require_word(phi: PathConstraint) -> PathConstraint:
    if not phi.is_word_constraint():
        raise ValueError(
            f"{phi} is not a word constraint; the untyped PTIME decider "
            "covers only P_w (use the dispatcher for larger fragments)"
        )
    return phi


class WordImplicationDecider:
    """Decides ``Sigma |= phi`` (== ``Sigma |=_f phi``) for P_w.

    >>> from repro.constraints import parse_constraints, parse_constraint
    >>> sigma = parse_constraints('''
    ...     book.author => person
    ...     person.wrote => book
    ... ''')
    >>> decider = WordImplicationDecider(sigma)
    >>> decider.implies(parse_constraint("book.author.wrote => book"))
    True
    >>> decider.implies(parse_constraint("book.author.wrote => person"))
    False
    """

    def __init__(self, sigma: Iterable[PathConstraint]) -> None:
        self._sigma = tuple(_require_word(phi) for phi in sigma)
        self._rules = [(phi.lhs, phi.rhs) for phi in self._sigma]
        self._system = PrefixRewriteSystem(self._rules, symmetric=False)
        # Left sides of equality-generating constraints (empty rhs).
        self._egd_lhs = [
            lhs for lhs, rhs in self._rules
            if rhs.is_empty() and not lhs.is_empty()
        ]
        self._closure_cache: dict[Path, PrefixRewriteSystem] = {}

    @property
    def sigma(self) -> tuple[PathConstraint, ...]:
        return self._sigma

    @property
    def system(self) -> PrefixRewriteSystem:
        """The base rewriting system (three-rule derivability only)."""
        return self._system

    def closure_system(self, alpha: Path | str) -> PrefixRewriteSystem:
        """The query-contextual system: base rules plus the root-loop
        rules ``() => u`` for every equality-generating constraint
        ``u => ()`` the hypothesis ``alpha`` triggers (see the module
        docstring)."""
        alpha = Path.coerce(alpha)
        cached = self._closure_cache.get(alpha)
        if cached is not None:
            return cached
        triggered: set[Path] = set()
        system = self._system
        while self._egd_lhs:
            automaton = system.post_star_automaton(alpha)
            fresh = [
                u
                for u in self._egd_lhs
                if u not in triggered
                and automaton.accepts_extension_of(u.labels)
            ]
            if not fresh:
                break
            triggered.update(fresh)
            system = PrefixRewriteSystem(
                self._rules + [(Path.empty(), u) for u in sorted(triggered)]
            )
        self._closure_cache[alpha] = system
        return system

    def implies(
        self,
        phi: PathConstraint,
        chase_steps: int | None = None,
        deadline: float | None = None,
    ) -> bool:
        """The decision procedure.

        Polynomial-time and complete on the empty-conclusion-free
        fragment; see the module docstring for the layered strategy
        (and the :class:`~repro.errors.IncompleteFragmentError` escape
        hatch) outside it.  ``chase_steps`` and ``deadline`` (absolute
        ``time.monotonic()``) bound the equality-generating chase fallback
        only — the rewriting core always runs to completion.
        """
        _require_word(phi)
        if not self._egd_lhs:
            return self._system.derives(phi.lhs, phi.rhs)
        if self.closure_system(phi.lhs).derives(phi.lhs, phi.rhs):
            return True  # sound closure
        from repro.errors import IncompleteFragmentError
        from repro.reasoning.chase import chase_implication

        if chase_steps is None:
            chase_steps = EGD_FALLBACK_CHASE_STEPS
        chased = chase_implication(
            list(self._sigma), phi, max_steps=chase_steps, deadline=deadline
        )
        if chased.answer.is_definite:
            return chased.answer.to_bool()
        raise IncompleteFragmentError(
            "premises contain equality-generating word constraints "
            "(empty conclusion) and neither the sound closure nor the "
            f"chase settled {phi} within the budget "
            f"(chase_steps={chase_steps}); this lies outside the "
            "decider's guaranteed-complete fragment"
        )

    def derivation(self, phi: PathConstraint) -> list[RewriteStep] | None:
        """An explicit *three-rule* rewrite derivation, when one exists.

        Closure-dependent implications (through equality-generating
        constraints) have no such derivation and return None even
        though :meth:`implies` answers True.
        """
        _require_word(phi)
        return self._system.find_derivation(phi.lhs, phi.rhs)

    def prove(self, phi: PathConstraint) -> IrProof | None:
        """An I_r proof using only the three untyped-sound word rules.

        Returns None when phi is not implied, or when the certificate
        search (not the decision!) exhausts its budget.
        """
        steps = self.derivation(phi)
        if steps is None:
            return None
        proof = build_word_proof(self._sigma, phi, steps)
        check_proof(proof)  # never hand out an unverified proof
        return proof

    def consequences(
        self, source: Path | str, max_length: int, max_count: int | None = None
    ) -> list[Path]:
        """All beta with Sigma |= (source => beta), up to a length bound."""
        return list(
            self.closure_system(source).derivable_words(
                source, max_length, max_count
            )
        )


def build_word_proof(
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
    steps: list[RewriteStep],
) -> IrProof:
    """Turn a rewrite derivation into an I_r proof.

    Each rewrite step ``u.z => v.z`` (rule ``u => v``) becomes axiom +
    right-congruence; the chain is folded with transitivity starting
    from reflexivity.  Inverted steps additionally use commutativity,
    so proofs from symmetric systems (the typed decider) type-check
    too.
    """
    builder = ProofBuilder(sigma)
    current = builder.reflexivity(phi.lhs)
    for step in steps:
        axiom_line = builder.axiom(sigma[step.rule_index])
        if step.inverted:
            axiom_line = builder.commutativity(axiom_line)
        congruent = builder.right_congruence(axiom_line, step.suffix)
        current = builder.transitivity(current, congruent)
    # The accumulated constraint is phi itself (reflexivity base makes
    # the zero-step case come out as alpha => alpha).
    if builder.line_constraint(current) != phi:
        raise AssertionError(
            "derivation does not end at the queried constraint"
        )
    return builder.build()


def implies_word(
    sigma: Iterable[PathConstraint],
    phi: PathConstraint,
    with_proof: bool = False,
    chase_steps: int | None = None,
    deadline: float | None = None,
) -> ImplicationResult:
    """One-shot convenience wrapper around the decider.

    ``chase_steps``/``deadline`` bound the equality-generating chase
    fallback (see :meth:`WordImplicationDecider.implies`); they are
    what :func:`repro.reasoning.dispatcher.solve` threads through from
    its own budget parameters.
    """
    decider = WordImplicationDecider(sigma)
    answer = decider.implies(phi, chase_steps=chase_steps, deadline=deadline)
    proof = decider.prove(phi) if (with_proof and answer) else None
    return ImplicationResult(
        answer=Trilean.of(answer),
        method="word-prefix-rewriting",
        decidable=True,
        complexity="PTIME",
        proof=proof,
        notes=("implication and finite implication coincide for P_w",),
    )
