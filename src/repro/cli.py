"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``check GRAPH CONSTRAINTS``
    Validate a graph (JSON, the ``repro.graph.serialize`` dict format)
    against a constraint file (line syntax); exit 1 on violations.
``imply CONSTRAINTS QUERY [--context CTX] [--schema XMLDATA]
[--jobs N|auto] [--deadline S] [--inject SPEC] [--max-respawns N]``
    Decide/semi-decide an implication question; prints the answer,
    method and Table 1 cell.  ``--schema`` takes an XML-Data file and
    is required for typed contexts.  On undecidable cells ``--jobs``
    caps the parallelism of the chase / counter-model race
    (``auto`` sizes it to the machine; a cost model then picks
    inline, in-process sharded, or pooled execution per solve, so
    extra jobs never lose to ``--jobs 1``), ``--deadline`` caps the
    whole portfolio
    in wall-clock seconds, ``--max-respawns`` bounds pool respawns
    after worker crashes, and ``--inject`` enables deterministic fault
    injection (``kill:3``, ``delay:2:0.5``, ``corrupt:1``, ``raise:0``,
    ``rate:0.3[:seed]``; comma-separated).  Answers are served from
    and stored to the cross-request implication cache
    (``--cache-dir``/``$REPRO_CACHE_DIR``, default ``~/.cache/repro``;
    ``--no-cache`` bypasses it).
    With ``--server HOST:PORT[,HOST:PORT...]`` the query is sent to a
    running ``repro serve`` daemon instead of being solved in-process;
    multiple endpoints enable client-side failover.
``serve [--host H] [--port P] [--max-queue N] [--solver-threads N]``
    Run the long-lived implication server: a JSON-lines protocol
    (``imply``/``check``/``health``/``stats``/``shutdown``) with
    bounded-queue admission control, single-flight deduplication of
    alpha-equivalent concurrent queries, a hung-solve watchdog
    (``--watchdog-grace-ms``), per-worker memory ceilings
    (``--max-worker-mb``), and graceful SIGTERM drain (in-flight work
    finishes, new work is refused, the warm pool is retired).  See
    :mod:`repro.server`.
``chaos [--seed N] [--requests N] [--fault-rate R] [--json-out F]``
    Seeded wire-level chaos sweep: real daemons, a real client, and a
    fault-perpetrating TCP proxy; gates on zero verdict flips,
    availability, bounded watchdog reclaim and endpoint failover.
    See :mod:`repro.server.chaos`.
``cache stats|clear [--cache-dir DIR]``
    Inspect (entries, bytes, lifetime hit/miss/store counters) or
    empty the on-disk implication cache.
``classify CONSTRAINTS QUERY``
    Report the fragment (P_w / P_w(K) / local extent / P_c) and the
    decidability verdict in every context.
``chase GRAPH CONSTRAINTS [-o OUT] [--max-steps N]``
    Repair a graph to satisfy the constraints; writes the chased graph.
``dot GRAPH``
    Print a Graphviz rendering of a graph file.
``fuzz [--seed N] [--per-fragment N] [--deadline S] [--json-out FILE]
[--inject-rate R] [--inject-seed N]``
    Differential cross-validation: random instances per fragment, every
    applicable engine, three-valued disagreement detection, and a
    delta-debugging shrinker; exit 1 on any disagreement.  With
    ``--inject-rate`` every portfolio run repeats under deterministic
    fault injection and the injected verdict is cross-checked against
    the clean one (definite answers may demote to UNKNOWN, never flip).
    ``--json-out`` is written atomically (temp file + rename), and an
    interrupted sweep still writes its partial report with
    ``"aborted": true``.  ``--cache-check`` additionally solves every
    instance cold and through a warmed implication cache and treats
    any verdict difference as a disagreement.

``query run GRAPH PATTERN``
    Evaluate a regular path query; prints answer nodes plus product
    and edge statistics.
``query contains CONSTRAINTS LEFT RIGHT [--context CTX] [--schema X]``
    Three-valued containment of two RPQs under constraints: exit 0
    with a definite true/false, 2 on UNKNOWN, 3 on error.  Exact on
    the decidable cells (EGD-free word constraints; M with a schema),
    sound-but-incomplete elsewhere.
``query optimize CONSTRAINTS BRANCH [BRANCH ...]``
    Prune subsumed/duplicate union branches and rewrite surviving
    words to their shortest provable equivalents; regex branches are
    pruned through the containment checker instead.
``query fuzz [--seed N] [--rounds N] [--json-out FILE]``
    Differential fuzz of the query layer: optimized and unoptimized
    unions must agree on every sampled Sigma-model, and containment
    verdicts are cross-checked directionally; exit 1 on any hit.

Constraint files use the line syntax (``#`` comments allowed)::

    book :: author ~> wrote
    book.author => person
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path as FilePath

from repro.checking import check_all
from repro.constraints import parse_constraint, parse_constraints
from repro.errors import ReproError
from repro.graph.serialize import from_dict, to_dict, to_dot
from repro.reasoning import (
    Context,
    ImplicationProblem,
    classify,
    solve,
    table1_cell,
)
from repro.reasoning.cache import ImplicationCache, resolve_cache_dir
from repro.reasoning.chase import chase


def _load_graph(path: str):
    with open(path) as handle:
        return from_dict(json.load(handle))


def _load_constraints(path: str):
    return parse_constraints(FilePath(path).read_text())


def _load_schema(path: str):
    from repro.xml import schema_from_xml_data

    return schema_from_xml_data(FilePath(path).read_text())


def _write_json_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    A reader (CI tailing the report, a dashboard) never observes a
    truncated file: either the old content or the complete new one.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=".repro-report-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _cmd_check(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    constraints = _load_constraints(args.constraints)
    report = check_all(graph, constraints)
    print(report.summary())
    return 0 if report.ok else 1


def _parse_jobs(text: str) -> int | str:
    """``--jobs`` value: a positive int, or ``auto`` for the cost model."""
    if text.strip().lower() == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise ValueError(
            f"--jobs must be a positive integer or 'auto', got {text!r}"
        ) from None


def _build_cache(args: argparse.Namespace) -> ImplicationCache | None:
    """The implication cache for one CLI invocation.

    Resolution: ``--no-cache`` disables it entirely; otherwise the
    on-disk store lives at ``--cache-dir``, else ``$REPRO_CACHE_DIR``,
    else ``~/.cache/repro``.
    """
    if getattr(args, "no_cache", False):
        return None
    return ImplicationCache(
        cache_dir=resolve_cache_dir(getattr(args, "cache_dir", None))
    )


def _cmd_imply_remote(args: argparse.Namespace) -> int:
    """``imply --server HOST:PORT``: route the query to a daemon.

    Constraint files are read locally but parsed server-side; the
    response carries the answer, fragment, faults and cache record
    over the wire.  The exit-code contract is preserved: 0 definite,
    2 UNKNOWN/rejected, 3 error (including overloaded after retries
    and draining).
    """
    from repro.errors import ServerUnavailable
    from repro.server import ServerClient, parse_endpoints

    endpoints = parse_endpoints(args.server)
    sigma_lines = FilePath(args.constraints).read_text().splitlines()
    budget_ms = (
        None if args.deadline is None else int(args.deadline * 1000)
    )
    schema_text = (
        FilePath(args.schema).read_text() if args.schema else None
    )
    jobs = _parse_jobs(args.jobs)
    try:
        with ServerClient(endpoints=endpoints) as client:
            response = client.imply(
                sigma_lines,
                args.query,
                context=args.context,
                schema=schema_text,
                budget_ms=budget_ms,
                jobs=None if jobs == 1 else jobs,
            )
    except ServerUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    status = response["status"]
    if status == "draining":
        print("error: server is draining", file=sys.stderr)
        return 3
    if status == "error":
        print(f"error: {response.get('error')}", file=sys.stderr)
        return 3
    if status == "rejected":
        print("answer:     unknown")
        print(f"rejected:   {response.get('reason')}")
        return 2
    print(f"answer:     {response['answer']}")
    print(f"method:     {response['method']}")
    cell = (
        f"decidable ({response['complexity']})"
        if response["decidable"]
        else "undecidable"
    )
    print(
        f"fragment:   {response['fragment']}  "
        f"[{response['context']}: {cell}]"
    )
    dedup = response.get("dedup")
    if dedup:
        print(f"dedup:      {dedup['role']}")
    cache = response.get("cache")
    if cache:
        print(f"cache:      {cache['status']} {cache.get('tier', '')}")
    faults = response.get("faults") or {}
    if faults.get("events"):
        described = ", ".join(
            f"{e['kind']}@{e['engine']}" for e in faults["events"]
        )
        print(f"faults:     {described}")
    for note in response.get("notes", ()):
        print(f"note:       {note}")
    countermodel = response.get("countermodel")
    if countermodel is not None:
        hint = (
            ""
            if args.dump_countermodel
            else " (use --dump-countermodel to save)"
        )
        print(
            f"countermodel: {len(countermodel['nodes'])} nodes{hint}"
        )
        if args.dump_countermodel:
            with open(args.dump_countermodel, "w") as handle:
                json.dump(countermodel, handle, indent=2)
            print(f"  written to {args.dump_countermodel}")
    return 0 if response["answer"] in ("true", "false") else 2


def _cmd_imply(args: argparse.Namespace) -> int:
    if args.server:
        return _cmd_imply_remote(args)
    sigma = _load_constraints(args.constraints)
    phi = parse_constraint(args.query)
    context = Context(args.context)
    schema = _load_schema(args.schema) if args.schema else None
    problem = ImplicationProblem(sigma, phi, context, schema=schema)
    jobs = _parse_jobs(args.jobs)
    decidable, _ = table1_cell(classify(sigma, phi), context)
    if decidable:
        # The portfolio knobs only drive the semi-decision pipeline;
        # telling the user beats silently ignoring their flags.
        # ``auto`` stays quiet: it delegates the choice rather than
        # demanding parallelism.
        if jobs != "auto" and jobs != 1:
            print(
                "warning: --jobs ignored (decidable cell runs the "
                "complete decider in-process)",
                file=sys.stderr,
            )
        if args.deadline is not None and context is not Context.SEMISTRUCTURED:
            print(
                "warning: --deadline ignored (the cubic M decider "
                "always terminates)",
                file=sys.stderr,
            )
    inject = None
    if args.inject:
        from repro.reasoning.faultinject import FaultPlan

        inject = FaultPlan.from_spec(args.inject)
    cache = _build_cache(args)
    try:
        result = solve(
            problem,
            allow_semidecision=not args.strict,
            jobs=jobs,
            deadline=args.deadline,
            max_respawns=args.max_respawns,
            inject=inject,
            cache=cache,
            max_worker_mb=args.max_worker_mb,
            memory_guard_mb=args.memory_guard_mb,
        )
    finally:
        if cache is not None:
            cache.flush_counters()
    print(f"answer:     {result.answer.value}")
    print(f"method:     {result.method}")
    klass = classify(sigma, phi)
    decidable, complexity = table1_cell(klass, context)
    status = f"decidable ({complexity})" if decidable else "undecidable"
    print(f"fragment:   {klass.value}  [{context.value}: {status}]")
    if result.cache is not None:
        print(f"cache:      {result.cache.describe()}")
    for engine in result.stats:
        print(f"engine:     {engine.describe()}")
    if not result.faults.clean:
        print(f"faults:     {result.faults.describe()}")
    for note in result.notes:
        print(f"note:       {note}")
    if result.proof is not None:
        print("proof (I_r):")
        print(result.proof.describe())
    if result.countermodel is not None:
        hint = "" if args.dump_countermodel else (
            " (use --dump-countermodel to save)"
        )
        print(
            f"countermodel: {result.countermodel.node_count()} nodes{hint}"
        )
        if args.dump_countermodel:
            with open(args.dump_countermodel, "w") as handle:
                json.dump(to_dict(result.countermodel), handle, indent=2)
            print(f"  written to {args.dump_countermodel}")
    return 0 if result.answer.is_definite else 2


def _cmd_classify(args: argparse.Namespace) -> int:
    sigma = _load_constraints(args.constraints)
    phi = parse_constraint(args.query)
    klass = classify(sigma, phi)
    print(f"fragment: {klass.value}")
    for context in Context:
        decidable, complexity = table1_cell(klass, context)
        status = f"decidable ({complexity})" if decidable else "undecidable"
        print(f"  {context.value:15} {status}")
    return 0


def _cmd_chase(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    constraints = _load_constraints(args.constraints)
    outcome = chase(graph, constraints, max_steps=args.max_steps)
    print(
        f"chase: {outcome.steps} step(s), {outcome.merges} merge(s), "
        f"fixpoint={outcome.fixpoint}"
    )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(to_dict(outcome.graph), handle, indent=2)
        print(f"written to {args.output}")
    return 0 if outcome.fixpoint else 1


def _cmd_dot(args: argparse.Namespace) -> int:
    print(to_dot(_load_graph(args.graph)))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ImplicationCache(cache_dir=resolve_cache_dir(args.cache_dir))
    assert cache.disk is not None
    if args.action == "stats":
        disk = cache.stats()["disk"]
        counters = disk["lifetime_counters"]
        print(f"directory:  {disk['directory']}")
        print(f"version:    {disk['version']}")
        print(f"entries:    {disk['entries']}")
        print(f"bytes:      {disk['bytes']}")
        print(f"hits:       {counters['hits']}")
        print(f"misses:     {counters['misses']}")
        print(f"stores:     {counters['stores']}")
        return 0
    removed = cache.clear()
    noun = "entry" if removed == 1 else "entries"
    print(f"cleared {removed} {noun} from {cache.disk.root}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import ImplicationServer, ServerConfig

    inject = None
    if args.inject:
        from repro.reasoning.faultinject import FaultPlan

        inject = FaultPlan.from_spec(args.inject)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        solver_threads=args.solver_threads,
        jobs=_parse_jobs(args.jobs),
        max_respawns=args.max_respawns,
        default_budget_ms=(
            None if args.deadline is None else int(args.deadline * 1000)
        ),
        cache=_build_cache(args),
        inject=inject,
        allow_delay=args.allow_delay,
        port_file=args.port_file,
        watchdog_grace_ms=args.watchdog_grace_ms,
        watchdog_hard_grace_ms=args.watchdog_hard_grace_ms,
        watchdog_max_solve_ms=args.watchdog_max_solve_ms,
        max_worker_mb=args.max_worker_mb,
        memory_guard_mb=args.memory_guard_mb,
    )
    server = ImplicationServer(config)

    def announce(message: str) -> None:
        print(message, flush=True)

    try:
        return server.run(announce=announce)
    except KeyboardInterrupt:  # pragma: no cover - signal-handler gap
        return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """``repro chaos``: the seeded wire-chaos acceptance sweep.

    Runs real daemons, a real client and a fault-perpetrating TCP
    proxy (:mod:`repro.server.chaos`), scores the sweep against a
    clean in-process oracle, and gates on the service contract: no
    verdict flips, availability, bounded watchdog reclaim, endpoint
    failover, clean drains.  Exit 0 when every gate holds, 3 when any
    fails — same contract as the fuzz harness.
    """
    from repro.server.chaos import run_chaos_sweep

    report = run_chaos_sweep(
        seed=args.seed,
        requests=args.requests,
        fault_rate=args.fault_rate,
        watchdog_grace_ms=args.watchdog_grace_ms,
    )
    wire = report["wire"]
    print(
        f"wire:     {args.requests} requests at fault rate "
        f"{args.fault_rate} (seed {args.seed}): "
        f"{wire['ok_match']} ok, {wire['demoted']} demoted, "
        f"{wire['flips']} flipped, {wire['unavailable']} unavailable"
    )
    print(
        f"          availability {wire['availability']:.2%}, "
        f"p99 {wire['p99_ms']:.1f} ms, faults "
        + ", ".join(
            f"{kind}={wire['proxy'][kind]}"
            for kind in ("drop", "close", "partial", "garbage", "delay")
        )
    )
    reclaim = report["reclaim"]
    print(
        f"reclaim:  wedged solve answered "
        f"{reclaim['wedged_answer']!r} in {reclaim['wall_ms']:.0f} ms "
        f"({reclaim['reclaim_ms']:.0f} ms past budget, bound "
        f"{reclaim['bound_ms']} ms), {reclaim['threads_retired']} "
        f"thread(s) retired"
    )
    failover = report["failover"]
    print(
        f"failover: killed endpoint A ({failover['killed_state']}), "
        f"recovered on B: {failover['after_status']}/"
        f"{failover['after_answer']}"
    )
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.json_out}")
    if report["pass"]:
        print("chaos: PASS")
        return 0
    for failure in report["failures"]:
        print(f"chaos: FAIL - {failure}", file=sys.stderr)
    return 3


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.diffcheck import fuzz
    from repro.diffcheck.oracles import OracleConfig

    jobs = tuple(
        sorted({int(j) for j in args.portfolio_jobs.split(",") if j.strip()})
    )
    sink: dict = {}
    try:
        report = fuzz(
            seed=args.seed,
            per_fragment=args.per_fragment,
            deadline=args.deadline,
            fragments=args.fragment or None,
            config=OracleConfig(portfolio_jobs=jobs),
            shrink=not args.no_shrink,
            inject_rate=args.inject_rate,
            inject_seed=args.inject_seed,
            cache_check=args.cache_check,
            report_sink=sink,
        )
    except BaseException:
        # fuzz() absorbs KeyboardInterrupt itself; anything landing
        # here is a hard crash.  Salvage whatever the sweep learned.
        partial = sink.get("report")
        if partial is not None and args.json_out:
            partial.aborted = True
            _write_json_atomic(args.json_out, partial.to_json())
            print(
                f"partial report written to {args.json_out}",
                file=sys.stderr,
            )
        raise
    if args.json_out:
        _write_json_atomic(args.json_out, report.to_json())
        print(f"report written to {args.json_out}", file=sys.stderr)
    print(report.summary())
    for record in report.disagreements:
        print()
        print(
            f"DISAGREEMENT [{record.fragment} seed={record.seed} "
            f"index={record.index}] {record.kind}: "
            + " vs ".join(
                f"{e}={a}"
                for e, a in zip(record.engines, record.answers)
            )
        )
        print("  shrunk sigma:")
        for line in record.shrunk_sigma:
            print(f"    {line}")
        print(f"  shrunk phi:   {record.shrunk_phi}")
        print("  regression test:")
        for line in record.regression_test.splitlines():
            print(f"    {line}")
    if report.aborted:
        return 130
    return 0 if report.ok else 1


_REGEX_META = set("|*+?()_")


def _is_regex_pattern(text: str) -> bool:
    return any(ch in _REGEX_META for ch in text)


def _cmd_query_run(args: argparse.Namespace) -> int:
    from repro.query import evaluate_rpq

    graph = _load_graph(args.graph)
    result = evaluate_rpq(graph, args.pattern)
    for node in sorted(result.answers, key=repr):
        print(node)
    print(
        f"# {len(result.answers)} answer(s), "
        f"{result.product_states_visited} product state(s), "
        f"{result.edges_traversed} edge(s) traversed",
        file=sys.stderr,
    )
    return 0


def _cmd_query_contains(args: argparse.Namespace) -> int:
    from repro.query import QueryContainmentChecker

    sigma = _load_constraints(args.constraints)
    schema = _load_schema(args.schema) if args.schema else None
    cache = _build_cache(args)
    checker = QueryContainmentChecker(
        sigma,
        context=args.context,
        schema=schema,
        cache=cache,
        jobs=_parse_jobs(args.jobs),
        deadline=args.deadline,
    )
    try:
        result = checker.contains(args.left, args.right)
    finally:
        if cache is not None:
            cache.flush_counters()
    print(f"verdict:    {result.verdict.value}")
    print(f"method:     {result.method}")
    print(f"cell:       {'decidable' if result.decidable else 'sound-incomplete'}")
    if result.witness is not None:
        print(f"witness:    {result.witness}")
    for note in result.notes:
        print(f"note:       {note}")
    if checker.stats["solve_calls"]:
        print(
            f"dispatcher: {checker.stats['solve_calls']} solve(s), "
            f"{checker.stats['cache_hits']} cache hit(s)"
        )
    return 0 if result.verdict.is_definite else 2


def _cmd_query_optimize(args: argparse.Namespace) -> int:
    sigma = _load_constraints(args.constraints)
    cache = _build_cache(args)
    jobs = _parse_jobs(args.jobs)
    try:
        if any(_is_regex_pattern(b) for b in args.branch):
            from repro.query import (
                QueryContainmentChecker,
                optimize_rpq_union,
            )

            schema = _load_schema(args.schema) if args.schema else None
            checker = QueryContainmentChecker(
                sigma,
                context=args.context,
                schema=schema,
                cache=cache,
                jobs=jobs,
                deadline=args.deadline,
            )
            report = optimize_rpq_union(args.branch, checker)
            stats = checker.stats
        else:
            from repro.query import WordQueryOptimizer

            optimizer = WordQueryOptimizer(
                sigma, cache=cache, jobs=jobs, deadline=args.deadline
            )
            report = optimizer.optimize_union(
                args.branch, rewrite=not args.no_rewrite
            )
            stats = optimizer.stats
    finally:
        if cache is not None:
            cache.flush_counters()
    print(f"original:   {' | '.join(str(b) for b in report.original)}")
    print(f"optimized:  {' | '.join(str(b) for b in report.optimized)}")
    print(f"saved:      {report.branches_saved} branch(es)")
    for dropped, absorber in report.pruned:
        kind = "duplicate" if str(dropped) == str(absorber) else "subsumed"
        print(f"pruned:     {dropped} ({kind}, absorbed by {absorber})")
    for source, target in getattr(report, "rewrites", ()):
        print(f"rewritten:  {source} -> {target}")
    for note in report.notes:
        print(f"note:       {note}")
    if stats["solve_calls"]:
        print(
            f"dispatcher: {stats['solve_calls']} solve(s), "
            f"{stats['cache_hits']} cache hit(s)"
        )
    return 0


def _cmd_query_fuzz(args: argparse.Namespace) -> int:
    from repro.diffcheck import fuzz_queries

    report = fuzz_queries(
        seed=args.seed,
        rounds=args.rounds,
        deadline=args.deadline,
        shrink=not args.no_shrink,
    )
    if args.json_out:
        _write_json_atomic(args.json_out, report.to_json())
        print(f"report written to {args.json_out}", file=sys.stderr)
    print(report.summary())
    for record in report.disagreements:
        print()
        print(
            f"DISAGREEMENT [seed={record.seed} index={record.index}] "
            f"{record.kind}: {record.detail}"
        )
        print("  shrunk sigma:")
        for line in record.shrunk_sigma:
            print(f"    {line}")
        print(f"  shrunk query: {record.shrunk_query}")
        print("  regression test:")
        for line in record.regression_test.splitlines():
            print(f"    {line}")
    if report.aborted:
        return 130
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Path/type constraint reasoning (Buneman-Fan-Weinstein, "
        "PODS 1999 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="validate a graph against constraints")
    p.add_argument("graph")
    p.add_argument("constraints")
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("imply", help="decide an implication question")
    p.add_argument("constraints")
    p.add_argument("query")
    p.add_argument(
        "--context",
        choices=[c.value for c in Context],
        default=Context.SEMISTRUCTURED.value,
    )
    p.add_argument("--schema", help="XML-Data schema file (typed contexts)")
    p.add_argument(
        "--strict",
        action="store_true",
        help="refuse semi-decision on undecidable cells",
    )
    p.add_argument("--dump-countermodel", metavar="FILE")
    p.add_argument(
        "--jobs",
        default="1",
        metavar="N|auto",
        help="parallelism cap for the semi-decision portfolio "
        "(1 = sequential; 'auto' sizes to the machine; a cost model "
        "picks inline/sharded/pooled execution per solve)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget shared by all portfolio engines",
    )
    p.add_argument(
        "--max-respawns",
        type=int,
        default=2,
        metavar="N",
        help="pool respawns after worker crashes before degrading "
        "to in-process execution",
    )
    p.add_argument(
        "--inject",
        metavar="SPEC",
        help="deterministic fault injection: kill:ORD, raise:ORD, "
        "delay:ORD:SECONDS, corrupt:ORD, rate:R[:SEED] "
        "(comma-separated; testing instrument)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the cross-request implication cache entirely",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="on-disk cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    p.add_argument(
        "--server",
        metavar="HOST:PORT[,HOST:PORT...]",
        help="send the query to a running `repro serve` daemon "
        "instead of solving locally; a comma-separated list enables "
        "client-side failover across replicas",
    )
    p.add_argument(
        "--max-worker-mb",
        type=int,
        default=None,
        metavar="MB",
        help="RLIMIT_AS ceiling per pool worker; a worker past it "
        "dies with MemoryError and rides the crash-recovery path",
    )
    p.add_argument(
        "--memory-guard-mb",
        type=int,
        default=None,
        metavar="MB",
        help="degrade pooled execution to in-process scans once this "
        "process's RSS passes MB",
    )
    p.set_defaults(func=_cmd_imply)

    p = sub.add_parser(
        "serve",
        help="run the implication server daemon (JSON-lines protocol)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8747,
        help="TCP port (0 = pick a free one; see --port-file)",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="bounded admission queue size; beyond it requests are "
        "shed with an overloaded response",
    )
    p.add_argument(
        "--solver-threads",
        type=int,
        default=2,
        metavar="N",
        help="concurrent solves (each may use the process pool "
        "underneath per --jobs)",
    )
    p.add_argument(
        "--jobs",
        default="auto",
        metavar="N|auto",
        help="per-solve parallelism cap (cost-model dispatch)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request budget when the client sends none",
    )
    p.add_argument("--max-respawns", type=int, default=2, metavar="N")
    p.add_argument(
        "--inject",
        metavar="SPEC",
        help="deterministic fault injection for every solve "
        "(testing instrument; disables single-flight dedup and "
        "cache lookups)",
    )
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--cache-dir", metavar="DIR")
    p.add_argument(
        "--port-file",
        metavar="FILE",
        help="write the bound port here after startup (atomically)",
    )
    p.add_argument(
        "--allow-delay",
        action="store_true",
        help="honor the delay_ms and wedge request fields (testing "
        "instruments for queue/drain/watchdog behavior)",
    )
    p.add_argument(
        "--watchdog-grace-ms",
        type=int,
        default=5000,
        metavar="MS",
        help="grace past a solve's deadline before the watchdog "
        "trips its cooperative cancel flag (0 disables the watchdog)",
    )
    p.add_argument(
        "--watchdog-hard-grace-ms",
        type=int,
        default=None,
        metavar="MS",
        help="further grace after the cooperative cancel before the "
        "wedged solver thread is retired and replaced (default: same "
        "as --watchdog-grace-ms)",
    )
    p.add_argument(
        "--watchdog-max-solve-ms",
        type=int,
        default=None,
        metavar="MS",
        help="implicit watchdog deadline for solves that arrive "
        "without a budget (default: unbudgeted solves are unwatched)",
    )
    p.add_argument(
        "--max-worker-mb",
        type=int,
        default=None,
        metavar="MB",
        help="RLIMIT_AS ceiling per pool worker; a worker past it "
        "dies with MemoryError and rides the crash-recovery path",
    )
    p.add_argument(
        "--memory-guard-mb",
        type=int,
        default=None,
        metavar="MB",
        help="degrade pooled solves to in-process scans once the "
        "daemon's RSS passes MB",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "chaos",
        help="seeded wire-chaos sweep against a live daemon "
        "(acceptance harness for the service layer)",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="PRNG seed for the fault plan and request sequence",
    )
    p.add_argument(
        "--requests",
        type=int,
        default=40,
        metavar="N",
        help="solve requests in the wire phase",
    )
    p.add_argument(
        "--fault-rate",
        type=float,
        default=0.3,
        metavar="R",
        help="fraction of proxied connections that suffer a fault",
    )
    p.add_argument(
        "--watchdog-grace-ms",
        type=int,
        default=500,
        metavar="MS",
        help="watchdog grace used by the sweep's daemons",
    )
    p.add_argument(
        "--json-out",
        metavar="FILE",
        help="write the full JSON report here",
    )
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "cache",
        help="inspect or clear the cross-request implication cache",
    )
    p.add_argument(
        "action",
        choices=("stats", "clear"),
        help="stats: entries/bytes and lifetime hit/miss/store "
        "counters; clear: remove every stored entry",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="on-disk cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("classify", help="fragment + Table 1 verdicts")
    p.add_argument("constraints")
    p.add_argument("query")
    p.set_defaults(func=_cmd_classify)

    p = sub.add_parser("chase", help="repair a graph to satisfy constraints")
    p.add_argument("graph")
    p.add_argument("constraints")
    p.add_argument("-o", "--output")
    p.add_argument("--max-steps", type=int, default=10_000)
    p.set_defaults(func=_cmd_chase)

    p = sub.add_parser("dot", help="render a graph file as Graphviz DOT")
    p.add_argument("graph")
    p.set_defaults(func=_cmd_dot)

    p = sub.add_parser(
        "fuzz",
        help="differential cross-validation of all Table 1 engines",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--per-fragment",
        type=int,
        default=25,
        metavar="N",
        help="instances per fragment generator",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the whole sweep",
    )
    p.add_argument(
        "--fragment",
        action="append",
        metavar="NAME",
        help="restrict to one generator (repeatable); default: all",
    )
    p.add_argument(
        "--portfolio-jobs",
        default="1,4",
        metavar="N,M",
        help="comma-separated job counts to race the portfolio at",
    )
    p.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw disagreements without delta-debugging them",
    )
    p.add_argument(
        "--json-out",
        metavar="FILE",
        help="write the machine-readable report here (atomically; a "
        "partial report with aborted=true survives interruption)",
    )
    p.add_argument(
        "--inject-rate",
        type=float,
        default=0.0,
        metavar="R",
        help="re-run every portfolio engine under injected faults at "
        "this rate and cross-check against the clean verdict",
    )
    p.add_argument(
        "--inject-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the deterministic injection plans",
    )
    p.add_argument(
        "--cache-check",
        action="store_true",
        help="solve every instance cold and again through a warmed "
        "implication cache and fail on any verdict difference",
    )
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "query",
        help="regular path queries: evaluate, contain, optimize, fuzz",
    )
    qsub = p.add_subparsers(dest="query_command", required=True)

    q = qsub.add_parser("run", help="evaluate an RPQ against a graph file")
    q.add_argument("graph")
    q.add_argument("pattern")
    q.set_defaults(func=_cmd_query_run)

    q = qsub.add_parser(
        "contains",
        help="three-valued RPQ containment under constraints "
        "(exit 0 definite, 2 unknown, 3 error)",
    )
    q.add_argument("constraints")
    q.add_argument("left")
    q.add_argument("right")
    q.add_argument(
        "--context",
        choices=[c.value for c in Context],
        default=Context.SEMISTRUCTURED.value,
    )
    q.add_argument("--schema", help="XML-Data schema file (typed contexts)")
    q.add_argument("--jobs", default="auto", metavar="N|auto")
    q.add_argument("--deadline", type=float, default=None, metavar="SECONDS")
    q.add_argument("--no-cache", action="store_true")
    q.add_argument("--cache-dir", metavar="DIR")
    q.set_defaults(func=_cmd_query_contains)

    q = qsub.add_parser(
        "optimize",
        help="prune and rewrite a union query under constraints "
        "(word unions use the dispatcher-backed word optimizer; "
        "regex branches route through the containment checker)",
    )
    q.add_argument("constraints")
    q.add_argument("branch", nargs="+", help="union branches")
    q.add_argument(
        "--context",
        choices=[c.value for c in Context],
        default=Context.SEMISTRUCTURED.value,
    )
    q.add_argument("--schema", help="XML-Data schema file (typed contexts)")
    q.add_argument(
        "--no-rewrite",
        action="store_true",
        help="prune subsumed branches only, keep surviving words as-is",
    )
    q.add_argument("--jobs", default="auto", metavar="N|auto")
    q.add_argument("--deadline", type=float, default=None, metavar="SECONDS")
    q.add_argument("--no-cache", action="store_true")
    q.add_argument("--cache-dir", metavar="DIR")
    q.set_defaults(func=_cmd_query_optimize)

    q = qsub.add_parser(
        "fuzz",
        help="differential fuzz of the query layer: optimized vs "
        "unoptimized answers on Sigma-models, containment verdicts "
        "vs brute-force inclusion (exit 0 clean, 1 disagreement)",
    )
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--rounds", type=int, default=25, metavar="N")
    q.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS"
    )
    q.add_argument("--no-shrink", action="store_true")
    q.add_argument("--json-out", metavar="FILE")
    q.set_defaults(func=_cmd_query_fuzz)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
