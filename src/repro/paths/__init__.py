"""Paths: finite words over an edge-label alphabet.

A *path* in the paper (Section 2.1) is a first-order formula
``rho(x, y)`` asserting that node ``y`` is reachable from node ``x`` by
following a fixed sequence of edge labels.  Syntactically a path is just
that label sequence, so this package represents paths as immutable words
over label strings, with concatenation, prefix tests, and parsing.
"""

from repro.paths.path import EPSILON, Path

__all__ = ["Path", "EPSILON"]
