"""The :class:`Path` type: an immutable word of edge labels.

The paper defines a path as a logical formula built from binary edge
relations (Section 2.1):

* the empty path ``epsilon(x, y)`` is ``x = y``;
* ``K . rho`` is ``exists z (K(x, z) and rho(z, y))``.

A path is therefore determined by its label sequence.  :class:`Path`
stores that sequence as a tuple of strings and provides the operations
the constraint language needs: concatenation (``.concat`` / ``*``),
prefix tests (``is_prefix_of``), prefix enumeration, and parsing from
the dotted surface syntax used throughout this library
(``"book.author"``).

Labels may be any non-empty strings that do not contain the separator
``.`` or whitespace; this keeps the surface syntax unambiguous.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator
from functools import total_ordering

from repro.errors import PathSyntaxError

_LABEL_RE = re.compile(r"^[^\s.()]+$")

#: Surface syntax for the empty path.
_EPSILON_TOKENS = frozenset({"", "()", "epsilon", "eps", "ε"})


def _check_label(label: str) -> str:
    if not isinstance(label, str):
        raise PathSyntaxError(f"edge label must be a string, got {label!r}")
    if not _LABEL_RE.match(label):
        raise PathSyntaxError(
            f"invalid edge label {label!r}: labels are non-empty strings "
            "without whitespace, dots or parentheses"
        )
    return label


@total_ordering
class Path:
    """An immutable sequence of edge labels.

    Instances are hashable and totally ordered (by length, then
    lexicographically — the *shortlex* order, which several deciders use
    as a canonical ordering on words).

    >>> p = Path.parse("book.author")
    >>> p.labels
    ('book', 'author')
    >>> p * Path.parse("name")
    Path('book.author.name')
    >>> Path.empty().is_prefix_of(p)
    True
    """

    __slots__ = ("_labels", "_hash")

    def __init__(self, labels: Iterable[str] = ()) -> None:
        self._labels = tuple(_check_label(lab) for lab in labels)
        self._hash = hash(self._labels)

    # -- construction -------------------------------------------------

    @classmethod
    def empty(cls) -> "Path":
        """The empty path ``epsilon`` (``x = y``)."""
        return _EPSILON

    @classmethod
    def single(cls, label: str) -> "Path":
        """A one-edge path."""
        return cls((label,))

    @classmethod
    def parse(cls, text: str) -> "Path":
        """Parse the dotted surface syntax.

        ``"book.author"`` parses to a two-label path.  The empty path
        may be written ``""``, ``"()"``, ``"epsilon"`` or ``"eps"``.
        Whitespace around the whole expression is ignored.
        """
        if not isinstance(text, str):
            raise PathSyntaxError(f"expected a string, got {text!r}")
        text = text.strip()
        if text in _EPSILON_TOKENS:
            return cls.empty()
        return cls(part.strip() for part in text.split("."))

    @classmethod
    def coerce(cls, value: "Path | str | Iterable[str]") -> "Path":
        """Coerce a path-like value (Path, dotted string, or label
        iterable) to a :class:`Path`."""
        if isinstance(value, Path):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        return cls(value)

    # -- basic queries ------------------------------------------------

    @property
    def labels(self) -> tuple[str, ...]:
        """The label sequence as a tuple."""
        return self._labels

    def is_empty(self) -> bool:
        """True for the empty path epsilon."""
        return not self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Path(self._labels[index])
        return self._labels[index]

    def first(self) -> str:
        """The first label; raises on the empty path."""
        if not self._labels:
            raise IndexError("the empty path has no first label")
        return self._labels[0]

    def last(self) -> str:
        """The last label; raises on the empty path."""
        if not self._labels:
            raise IndexError("the empty path has no last label")
        return self._labels[-1]

    # -- algebra ------------------------------------------------------

    def concat(self, other: "Path | str") -> "Path":
        """Path concatenation (Section 2.1)."""
        other = Path.coerce(other)
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Path(self._labels + other._labels)

    def __mul__(self, other: "Path | str") -> "Path":
        return self.concat(other)

    def prepend(self, label: str) -> "Path":
        """The path ``label . self``."""
        return Path((label,) + self._labels)

    def append(self, label: str) -> "Path":
        """The path ``self . label``."""
        return Path(self._labels + (label,))

    def is_prefix_of(self, other: "Path | str") -> bool:
        """The prefix relation ``self <=_p other``: ``other`` equals
        ``self . rest`` for some path ``rest``."""
        other = Path.coerce(other)
        return other._labels[: len(self._labels)] == self._labels

    def is_proper_prefix_of(self, other: "Path | str") -> bool:
        """Strict prefix: prefix and not equal."""
        other = Path.coerce(other)
        return len(self) < len(other) and self.is_prefix_of(other)

    def strip_prefix(self, prefix: "Path | str") -> "Path":
        """The unique ``rest`` with ``self == prefix . rest``.

        Raises :class:`ValueError` when ``prefix`` is not a prefix.
        """
        prefix = Path.coerce(prefix)
        if not prefix.is_prefix_of(self):
            raise ValueError(f"{prefix!r} is not a prefix of {self!r}")
        return Path(self._labels[len(prefix) :])

    def prefixes(self) -> Iterator["Path"]:
        """All prefixes, from epsilon up to the path itself.

        Matches the paper's example: the prefixes of
        ``person.wrote.ref`` are epsilon, ``person``, ``person.wrote``
        and the path itself.
        """
        for i in range(len(self._labels) + 1):
            yield Path(self._labels[:i])

    def suffixes(self) -> Iterator["Path"]:
        """All suffixes, from the path itself down to epsilon."""
        for i in range(len(self._labels) + 1):
            yield Path(self._labels[i:])

    def alphabet(self) -> frozenset[str]:
        """The set of labels occurring in this path."""
        return frozenset(self._labels)

    # -- dunder plumbing ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Path):
            return self._labels == other._labels
        return NotImplemented

    def __lt__(self, other: "Path") -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        # Shortlex: shorter words first, ties broken lexicographically.
        return (len(self._labels), self._labels) < (
            len(other._labels),
            other._labels,
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not self._labels:
            return "()"
        return ".".join(self._labels)

    def __repr__(self) -> str:
        return f"Path({str(self)!r})"

    def to_formula(self, tail: str = "x", head: str = "y") -> str:
        """Render as the first-order formula of Section 2.1.

        >>> Path.parse("wrote.ref").to_formula("x", "y")
        'exists z1 (wrote(x, z1) and ref(z1, y))'
        """
        if not self._labels:
            return f"{tail} = {head}"
        if len(self._labels) == 1:
            return f"{self._labels[0]}({tail}, {head})"
        parts = []
        current = tail
        closing = 0
        for i, label in enumerate(self._labels[:-1]):
            nxt = f"z{i + 1}"
            parts.append(f"exists {nxt} ({label}({current}, {nxt}) and ")
            current = nxt
            closing += 1
        parts.append(f"{self._labels[-1]}({current}, {head})")
        return "".join(parts) + ")" * closing


_EPSILON = Path(())

#: Module-level singleton for the empty path.
EPSILON = _EPSILON
