"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError`, so callers
can install a single ``except ReproError`` guard around any public entry
point.  Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class PathSyntaxError(ReproError, ValueError):
    """A path expression could not be parsed."""


class ConstraintSyntaxError(ReproError, ValueError):
    """A path-constraint expression could not be parsed."""


class GraphError(ReproError):
    """A graph (sigma-structure) was malformed or misused."""


class UnknownNodeError(GraphError, KeyError):
    """A node identifier was not present in the graph."""


class SchemaError(ReproError):
    """A type schema was malformed (dangling class, bad DBtype, ...)."""


class ModelRestrictionError(SchemaError):
    """A schema violates the restrictions of the requested model.

    For example, a schema containing a set type is not a schema of the
    restricted model M (Section 3.3 of the paper).
    """


class InstanceError(ReproError):
    """A typed database instance violates its declared schema."""


class TypeConstraintViolation(ReproError):
    """A graph fails the type constraint Phi(Delta) of a schema."""


class PathNotInSchemaError(ReproError, ValueError):
    """A path used in a constraint is not in Paths(Delta) for the schema."""


class UndecidableProblemError(ReproError):
    """An exact decision was requested for a provably undecidable problem.

    The dispatcher raises this instead of silently falling back to a
    semi-decision procedure, unless the caller opted in to semi-decision.
    """


class ChaseBudgetExceeded(ReproError):
    """The chase hit its step budget before reaching a fixpoint."""


class RuntimeFaultError(ReproError):
    """Base class for faults of the supervised execution runtime.

    These never signal anything about the implication instance itself
    — only about the machinery (worker processes, pickling, pools)
    that was computing it.  The supervisor converts them into honest
    UNKNOWN contributions wherever soundness allows; they surface as
    exceptions only when no sound degraded answer exists.
    """


class WorkerCrashError(RuntimeFaultError):
    """A worker process died abruptly (segfault, OOM-kill, os._exit).

    Wraps the executor's ``BrokenProcessPool``: the pool is unusable
    and every in-flight task of that pool generation is lost.
    """


class PoolDegradedError(RuntimeFaultError):
    """The process pool was abandoned after exhausting its respawns.

    Remaining tasks run in-process under the surviving budget; this
    error is raised only when even that degraded mode cannot complete.
    """


class RetryExhausted(RuntimeFaultError):
    """A task failed on every pool attempt and the in-process retry.

    Carries the final underlying exception as ``__cause__``.
    """


class HungSolveError(RuntimeFaultError):
    """A solve ran past its deadline + grace and ignored cooperative
    cancellation; its solver thread was retired by the watchdog.

    The paper's implication problem is undecidable in the general
    case, so unboundedly long solves are intrinsic to the workload —
    this error is the runtime's honest acknowledgement that a
    particular solve was abandoned, never evidence about the instance
    itself.  Callers receive UNKNOWN, never a fabricated verdict.
    """


class InjectedFault(RuntimeFaultError):
    """A deliberate fault raised by the fault-injection layer.

    Only ever raised when injection is explicitly enabled
    (``repro imply --inject``, ``repro fuzz --inject-rate``, or a
    :class:`repro.reasoning.faultinject.FaultPlan` passed in code).
    """


class ProtocolError(ReproError, ValueError):
    """A server request or response violated the wire protocol.

    Raised for unparseable frames, unsupported protocol versions,
    unknown operations and oversized lines — always before any solver
    work starts, so a malformed client can never wedge the daemon.
    """


class ServerUnavailable(ReproError):
    """The implication server refused or could not take the request.

    Client-side: raised after retries are exhausted against an
    overloaded server, when the server is draining, or when the
    connection cannot be established at all.  ``retry_after_ms``
    carries the server's backpressure hint when one was given.
    """

    def __init__(self, message: str, retry_after_ms: int | None = None):
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class IncompleteFragmentError(ReproError):
    """The instance falls outside a decider's guaranteed-complete
    fragment and every sound fallback was indefinite.

    Raised by the word-constraint decider for premise sets containing
    equality-generating constraints (empty conclusion paths) when both
    the sound closure and the budgeted chase fail to settle the query.
    The three-rule axiomatization of [AV97] is complete only for the
    fragment without empty conclusions; see ``repro.reasoning.word``.
    """


class ProofError(ReproError):
    """An I_r proof object failed verification."""


class XMLSyntaxError(ReproError, ValueError):
    """The minimal XML parser rejected its input."""


class RegexSyntaxError(ReproError, ValueError):
    """A regular path expression could not be parsed."""
