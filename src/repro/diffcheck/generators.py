"""Seeded random instance generators, one per Table 1 fragment.

Each generator draws a small implication instance — a premise set
Sigma and a query phi, plus a random M schema for the typed fragment —
from a :class:`random.Random` stream, so a fixed seed reproduces the
exact instance sequence on any machine.  Design choices that keep the
downstream oracle matrix honest *and* fast:

* alphabets are tiny (two body labels plus at most one guard), so
  bounded counter-model search and the brute-force oracle stay cheap;
* every generator biases a fraction of queries toward *derivable*
  conclusions (chaining premise rewrites, or echoing a premise), so
  TRUE answers — where unsoundness of a refutation engine would show —
  appear often instead of almost never;
* generated instances are verified to classify into the intended
  fragment (:func:`repro.reasoning.dispatcher.classify`), resampling
  deterministically when a random draw lands elsewhere.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.constraints.ast import PathConstraint, backward, forward, word
from repro.paths import Path
from repro.reasoning.dispatcher import Context, ProblemClass, classify
from repro.types.siggen import SchemaSignature
from repro.types.typesys import (
    AtomicType,
    ClassRef,
    RecordType,
    Schema,
)

#: Body alphabet shared by the untyped generators.
BODY_LABELS = ("a", "b")

#: The guard label of the P_w(K) and local-extent generators.
GUARD = "K"


@dataclass(frozen=True)
class FragmentInstance:
    """One generated implication instance, tagged with its fragment."""

    fragment: str
    sigma: tuple[PathConstraint, ...]
    phi: PathConstraint
    context: Context = Context.SEMISTRUCTURED
    schema: Schema | None = None
    #: generator provenance for the report (bias used, retry count).
    provenance: str = ""

    @property
    def problem_class(self) -> ProblemClass:
        return classify(self.sigma, self.phi)


def _rand_path(
    rng: random.Random, alphabet: Sequence[str], lo: int, hi: int
) -> Path:
    return Path(rng.choice(alphabet) for _ in range(rng.randint(lo, hi)))


def _derive_word(
    rng: random.Random,
    rules: Sequence[tuple[Path, Path]],
    start: Path,
    max_applications: int = 3,
) -> Path:
    """Apply random prefix rewrites of ``rules`` to ``start``.

    The result is derivable from ``start`` under the rules, so
    ``start => result`` is an implied word query — the TRUE-bias used
    by the P_w-shaped generators.
    """
    current = start
    for _ in range(rng.randint(1, max_applications)):
        applicable = [
            (lhs, rhs) for lhs, rhs in rules if lhs.is_prefix_of(current)
        ]
        if not applicable:
            break
        lhs, rhs = rng.choice(applicable)
        current = rhs.concat(current.strip_prefix(lhs))
    return current


# ---------------------------------------------------------------------------
# P_w — word constraints, with and without equality-generating EGDs.
# ---------------------------------------------------------------------------


def gen_word(rng: random.Random) -> FragmentInstance:
    """P_w without empty conclusions — the [AV97] PTIME fragment."""
    sigma = tuple(
        word(
            _rand_path(rng, BODY_LABELS, 1, 3),
            _rand_path(rng, BODY_LABELS, 1, 3),
        )
        for _ in range(rng.randint(2, 4))
    )
    rules = [(c.lhs, c.rhs) for c in sigma]
    if rng.random() < 0.5:
        start = _rand_path(rng, BODY_LABELS, 1, 3)
        phi = word(start, _derive_word(rng, rules, start))
        bias = "derived-true"
    else:
        phi = word(
            _rand_path(rng, BODY_LABELS, 1, 3),
            _rand_path(rng, BODY_LABELS, 1, 3),
        )
        bias = "random"
    return FragmentInstance("P_w", sigma, phi, provenance=bias)


def gen_word_egd(rng: random.Random) -> FragmentInstance:
    """P_w *with* equality-generating ``u => ()`` premises.

    This is the fragment where the word decider leaves its
    guaranteed-complete core (see :mod:`repro.reasoning.word`) and
    falls back to trigger closure plus the chase — prime differential
    territory.
    """
    plain = [
        word(
            _rand_path(rng, BODY_LABELS, 1, 3),
            _rand_path(rng, BODY_LABELS, 1, 2),
        )
        for _ in range(rng.randint(1, 3))
    ]
    egds = [
        word(_rand_path(rng, BODY_LABELS, 1, 2), Path.empty())
        for _ in range(rng.randint(1, 2))
    ]
    sigma = tuple(plain + egds)
    if rng.random() < 0.4:
        phi = word(
            _rand_path(rng, BODY_LABELS, 1, 2), _rand_path(rng, BODY_LABELS, 0, 2)
        )
        bias = "random-short"
    else:
        phi = word(
            _rand_path(rng, BODY_LABELS, 1, 3),
            _rand_path(rng, BODY_LABELS, 1, 3),
        )
        bias = "random"
    return FragmentInstance("P_w+egd", sigma, phi, provenance=bias)


# ---------------------------------------------------------------------------
# P_w(K) — word constraints plus K-guarded versions (Section 4.1).
# ---------------------------------------------------------------------------


def gen_pw_k(rng: random.Random) -> FragmentInstance:
    """P_w(K): the smallest untyped-undecidable fragment (Thm 4.3)."""
    for _ in range(32):
        constraints: list[PathConstraint] = []
        guarded = 0
        for _ in range(rng.randint(2, 4)):
            lhs = _rand_path(rng, BODY_LABELS, 1, 3)
            rhs = _rand_path(rng, BODY_LABELS, 1, 3)
            if rng.random() < 0.6:
                constraints.append(forward(GUARD, lhs, rhs))
                guarded += 1
            else:
                constraints.append(word(lhs, rhs))
        if rng.random() < 0.3 and constraints:
            phi = rng.choice(constraints)
            bias = "echo-premise"
        elif rng.random() < 0.5:
            phi = forward(
                GUARD,
                _rand_path(rng, BODY_LABELS, 1, 3),
                _rand_path(rng, BODY_LABELS, 1, 3),
            )
            bias = "random-guarded"
        else:
            phi = word(
                _rand_path(rng, BODY_LABELS, 1, 3),
                _rand_path(rng, BODY_LABELS, 1, 3),
            )
            bias = "random-word"
        sigma = tuple(constraints)
        if guarded and classify(sigma, phi) is ProblemClass.PW_K:
            return FragmentInstance("P_w(K)", sigma, phi, provenance=bias)
    raise AssertionError("P_w(K) generator failed to classify in 32 draws")


# ---------------------------------------------------------------------------
# Local extent (Definitions 2.3/2.4).
# ---------------------------------------------------------------------------


def gen_local_extent(rng: random.Random) -> FragmentInstance:
    """A Definition 2.4 instance bounded by (rho, K) = (K, K).

    Reusing the guard label as rho keeps the alphabet at three labels
    (cheap counter-model search) while exercising the full g1 . g2
    reduction.  A slice of *unbounded* rest constraints rides along:
    Lemma 5.3 says the decider may drop them, the chase cannot — if
    the lemma (or its implementation) were wrong, the engines would
    split exactly here.
    """
    rho = Path.single(GUARD)
    prefix = rho.append(GUARD)  # rho.K = K.K
    bounded = [
        forward(
            prefix,
            _rand_path(rng, BODY_LABELS, 1, 2),
            _rand_path(rng, BODY_LABELS, 1, 2),
        )
        for _ in range(rng.randint(2, 4))
    ]
    rest = [
        (backward if rng.random() < 0.5 else forward)(
            rho.concat(_rand_path(rng, BODY_LABELS, 1, 2)),
            _rand_path(rng, BODY_LABELS, 1, 2),
            _rand_path(rng, BODY_LABELS, 1, 2),
        )
        for _ in range(rng.randint(0, 2))
    ]
    rules = [(c.lhs, c.rhs) for c in bounded]
    roll = rng.random()
    if roll < 0.3:
        phi = rng.choice(bounded)
        bias = "echo-premise"
    elif roll < 0.6:
        start = _rand_path(rng, BODY_LABELS, 1, 2)
        phi = forward(prefix, start, _derive_word(rng, rules, start))
        bias = "derived-true"
    else:
        phi = forward(
            prefix,
            _rand_path(rng, BODY_LABELS, 1, 2),
            _rand_path(rng, BODY_LABELS, 1, 2),
        )
        bias = "random"
    sigma = tuple(bounded + rest)
    instance = FragmentInstance("local-extent", sigma, phi, provenance=bias)
    assert instance.problem_class is ProblemClass.LOCAL_EXTENT, (
        f"local-extent generator produced a {instance.problem_class} instance"
    )
    return instance


# ---------------------------------------------------------------------------
# General P_c.
# ---------------------------------------------------------------------------


def gen_general(rng: random.Random) -> FragmentInstance:
    """Unrestricted P_c over a two-label alphabet.

    Mixes directions, prefixes and the occasional empty conclusion
    (node-merging EGDs in the chase).
    """

    def rand_constraint() -> PathConstraint:
        ctor = backward if rng.random() < 0.4 else forward
        return ctor(
            _rand_path(rng, BODY_LABELS, 0, 2),
            _rand_path(rng, BODY_LABELS, 1, 2),
            _rand_path(rng, BODY_LABELS, 0 if rng.random() < 0.15 else 1, 2),
        )

    for _ in range(32):
        sigma = tuple(rand_constraint() for _ in range(rng.randint(2, 4)))
        if rng.random() < 0.3:
            phi = rng.choice(sigma)
            bias = "echo-premise"
        else:
            phi = rand_constraint()
            bias = "random"
        if classify(sigma, phi) is ProblemClass.GENERAL:
            return FragmentInstance("P_c", sigma, phi, provenance=bias)
    raise AssertionError("P_c generator failed to classify in 32 draws")


# ---------------------------------------------------------------------------
# Typed instances over random M schemas.
# ---------------------------------------------------------------------------

_CLASS_FIELD_LABELS = ("f", "g", "h")
_ROOT_FIELD_LABELS = ("p", "q")


def _rand_m_schema(rng: random.Random) -> Schema:
    """A random schema of the restricted model M.

    One or two flat-record classes whose fields point at classes or
    atoms, under a record DBtype — every shape
    :meth:`Schema.is_m_schema` admits.
    """
    class_names = [f"C{i}" for i in range(1, rng.randint(2, 3))]
    classes = {}
    for name in class_names:
        fields = []
        for label in _CLASS_FIELD_LABELS[: rng.randint(1, 3)]:
            if rng.random() < 0.6:
                fields.append((label, ClassRef(rng.choice(class_names))))
            else:
                fields.append(
                    (label, AtomicType(rng.choice(("int", "string"))))
                )
        classes[name] = RecordType(fields)
    root_fields = [
        (label, ClassRef(rng.choice(class_names)))
        for label in _ROOT_FIELD_LABELS[: rng.randint(1, 2)]
    ]
    return Schema(classes, RecordType(root_fields))


def _valid_split(
    rng: random.Random, paths: Sequence[Path], parts: int
) -> list[Path] | None:
    """Split a random valid path into ``parts`` consecutive pieces."""
    candidates = [p for p in paths if len(p) >= parts - 1]
    if not candidates:
        return None
    p = rng.choice(candidates)
    cuts = sorted(rng.sample(range(len(p) + 1), parts - 1))
    pieces = []
    last = 0
    for cut in cuts + [len(p)]:
        pieces.append(Path(p.labels[last:cut]))
        last = cut
    return pieces


def gen_typed_m(rng: random.Random) -> FragmentInstance:
    """P_c constraints over ``Paths(Delta)`` of a random M schema.

    Every path in every constraint is valid by construction (splits of
    sampled members of Paths(Delta)), so the cubic decider never
    trips its schema guards on the unshrunk instance.
    """
    schema = _rand_m_schema(rng)
    signature = SchemaSignature(schema)
    paths = [p for p in signature.sample_paths(4) if not p.is_empty()]

    def rand_constraint() -> PathConstraint | None:
        if rng.random() < 0.35:
            # backward: alpha, alpha.beta, alpha.beta.gamma all valid.
            pieces = _valid_split(rng, paths, 3)
            if pieces is None:
                return None
            alpha, beta, gamma = pieces
            if beta.is_empty():
                return None
            return backward(alpha, beta, gamma)
        # forward: alpha.beta and alpha.gamma valid with shared alpha.
        pieces = _valid_split(rng, paths, 2)
        if pieces is None:
            return None
        alpha, beta = pieces
        if beta.is_empty():
            return None
        extensions = [
            q.strip_prefix(alpha) for q in paths if alpha.is_prefix_of(q)
        ]
        extensions.append(Path.empty())
        gamma = rng.choice(extensions)
        return forward(alpha, beta, gamma)

    sigma_list: list[PathConstraint] = []
    target = rng.randint(2, 4)
    while len(sigma_list) < target:
        candidate = rand_constraint()
        if candidate is not None:
            sigma_list.append(candidate)
    if rng.random() < 0.3:
        phi = rng.choice(sigma_list)
        bias = "echo-premise"
    else:
        phi = None
        while phi is None:
            phi = rand_constraint()
        bias = "random"
    return FragmentInstance(
        "typed-M",
        tuple(sigma_list),
        phi,
        context=Context.M,
        schema=schema,
        provenance=bias,
    )


#: The generator registry the fuzz runner iterates, in a fixed order.
FRAGMENT_GENERATORS: dict[
    str, Callable[[random.Random], FragmentInstance]
] = {
    "P_w": gen_word,
    "P_w+egd": gen_word_egd,
    "P_w(K)": gen_pw_k,
    "local-extent": gen_local_extent,
    "P_c": gen_general,
    "typed-M": gen_typed_m,
}


def generate_instance(
    fragment: str, seed: int, index: int = 0
) -> FragmentInstance:
    """The ``index``-th instance of a fragment's seeded stream.

    This is the reproduction handle the fuzz report refers to: the
    (fragment, seed, index) triple pins an instance exactly.
    """
    rng = random.Random(f"{seed}:{fragment}")
    generator = FRAGMENT_GENERATORS[fragment]
    instance = None
    for _ in range(index + 1):
        instance = generator(rng)
    assert instance is not None
    return instance
