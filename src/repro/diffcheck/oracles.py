"""The engine/oracle matrix and three-valued disagreement detection.

Every generated instance runs through every *applicable* engine:

==================  =========================================================
engine              answers
==================  =========================================================
``word``            complete P_w decider (:func:`implies_word`); UNKNOWN when
                    the EGD fragment's honest escape hatch fires
``local-extent``    complete Definition 2.4 decider
``typed-M``         complete cubic decider over M (:func:`implies_typed_m`)
``chase``           sound both ways on untyped instances; over a typed
                    context only its TRUE transfers (U(Delta) is a subclass
                    of all structures), so a typed chase FALSE is demoted to
                    UNKNOWN
``countermodel``    canonical-bitcode search — FALSE on a hit, else UNKNOWN
``brute-force``     the pre-canonical oracle scan, run when the candidate
                    space is small enough to enumerate graph-by-graph
``portfolio-jN``    :func:`run_portfolio` at ``jobs=N``
``enumerate-M``     the ``U_f(Delta)`` instance enumerator — FALSE on a
                    typed counter-model, else UNKNOWN
==================  =========================================================

Verdicts are *three-valued-aware*: an engine that cannot answer
returns UNKNOWN, never a guess, so a disagreement is either two
definite answers that contradict each other, or a definite answer
whose certificate (an I_r proof or a counter-model graph) fails
independent re-verification via :func:`check_proof` / the Definition
2.1 checker.  Unsound-direction answers are demoted to UNKNOWN at the
verdict boundary, so the conflict test itself stays a one-liner.

The matrix is *cache-bypassed by construction*: every engine here
calls its decision procedure directly (never ``solve(cache=...)``),
so the oracle verdicts are always freshly computed — which is exactly
what lets the ``fuzz --cache-check`` differential (and the cache unit
tests) reuse :func:`verify_countermodel` to independently cross-check
a replayed cache hit against an uncached ground truth.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, replace
from itertools import combinations

from repro.checking import check_all
from repro.checking.satisfaction import violations
from repro.constraints.ast import PathConstraint
from repro.errors import ReproError
from repro.graph.structure import Graph
from repro.reasoning.axioms import check_proof
from repro.reasoning.chase import chase_implication
from repro.reasoning.dispatcher import (
    Context,
    ImplicationProblem,
    ProblemClass,
    classify,
)
from repro.reasoning.local_extent import (
    implies_local_extent,
    reduce_to_word_problem,
)
from repro.constraints.classes import infer_bounds
from repro.reasoning.models import (
    brute_force_countermodel,
    find_countermodel,
    infer_alphabet,
)
from repro.reasoning.portfolio import Budget, run_portfolio
from repro.reasoning.typed_m import implies_typed_m
from repro.reasoning.word import implies_word
from repro.truth import Trilean
from repro.types.enumerate_m import find_m_countermodel
from repro.types.typesys import Schema

from repro.diffcheck.generators import FragmentInstance


@dataclass(frozen=True)
class OracleConfig:
    """Budgets for one pass of the engine matrix over one instance.

    Defaults are tuned so a full matrix run on a generated instance
    takes milliseconds-to-tens-of-milliseconds (pool spawn aside): the
    generators keep alphabets at <= 3 labels, so two-node counter-model
    search and the brute-force oracle stay tiny.
    """

    chase_steps: int = 400
    countermodel_nodes: int = 2
    brute_max_nodes: int = 2
    #: the brute-force oracle enumerates ``sum 2^(L*n^2)`` graphs; it
    #: is skipped (not silently — the verdict says so) above this cap.
    brute_space_cap: int = 5_000
    typed_limit: int = 400
    typed_max_per_class: int = 2
    portfolio_jobs: tuple[int, ...] = (1, 4)
    #: absolute ``time.monotonic()`` deadline shared by the whole pass.
    deadline: float | None = None


@dataclass(frozen=True)
class EngineVerdict:
    """One engine's (possibly abstaining) answer on one instance."""

    engine: str
    answer: Trilean
    elapsed: float = 0.0
    #: True/False when the engine produced a re-verifiable certificate
    #: (I_r proof or counter-model) and it passed/failed; None when the
    #: answer carries no independently checkable certificate.
    certificate_ok: bool | None = None
    note: str = ""

    def describe(self) -> str:
        parts = [f"{self.engine}: {self.answer.value}"]
        if self.certificate_ok is not None:
            parts.append(
                "certificate ok" if self.certificate_ok else "CERTIFICATE BAD"
            )
        if self.note:
            parts.append(self.note)
        return ", ".join(parts)


@dataclass(frozen=True)
class Disagreement:
    """A cross-engine contradiction or a failed certificate."""

    kind: str  # "definite-conflict" | "bad-certificate"
    engines: tuple[str, ...]
    answers: tuple[str, ...]
    detail: str = ""

    def describe(self) -> str:
        pairing = " vs ".join(
            f"{e}={a}" for e, a in zip(self.engines, self.answers)
        )
        text = f"{self.kind}: {pairing}"
        return f"{text} ({self.detail})" if self.detail else text


# ---------------------------------------------------------------------------
# Certificate re-verification (independent of the engines).
# ---------------------------------------------------------------------------


def verify_countermodel(
    graph: Graph, sigma: Sequence[PathConstraint], phi: PathConstraint
) -> bool:
    """Is ``graph`` a genuine counter-model?  (Definition 2.1 checker.)"""
    return bool(violations(graph, phi, limit=1)) and check_all(
        graph, list(sigma)
    ).ok


def _verify_proof(proof, sigma: Sequence[PathConstraint], phi) -> bool:
    try:
        conclusion = check_proof(proof)
    except ReproError:
        return False
    return conclusion == phi and set(proof.assumptions) <= set(sigma)


def _certificate_status(
    result, sigma: Sequence[PathConstraint], phi: PathConstraint
) -> tuple[bool | None, str]:
    """Re-verify whatever certificate an ImplicationResult carries."""
    if result.proof is not None:
        ok = _verify_proof(result.proof, sigma, phi)
        return ok, "" if ok else "I_r proof failed independent check_proof"
    if result.answer is Trilean.FALSE and result.countermodel is not None:
        ok = verify_countermodel(result.countermodel, sigma, phi)
        return ok, "" if ok else "countermodel failed Definition 2.1 recheck"
    return None, ""


# ---------------------------------------------------------------------------
# Engines.  Each takes (instance, config) and returns a verdict, or
# None when it does not apply to the instance.
# ---------------------------------------------------------------------------


def _timed(
    engine: str, body: Callable[[], tuple[Trilean, bool | None, str]]
) -> EngineVerdict:
    began = time.perf_counter()
    try:
        answer, cert_ok, note = body()
    except ReproError as exc:
        answer, cert_ok = Trilean.UNKNOWN, None
        note = f"abstained: {type(exc).__name__}: {exc}"
    return EngineVerdict(
        engine=engine,
        answer=answer,
        elapsed=time.perf_counter() - began,
        certificate_ok=cert_ok,
        note=note[:200],
    )


def _engine_word(
    inst: FragmentInstance, cfg: OracleConfig
) -> EngineVerdict | None:
    if inst.context is not Context.SEMISTRUCTURED:
        return None
    if not all(c.is_word_constraint() for c in inst.sigma) or not (
        inst.phi.is_word_constraint()
    ):
        return None

    def body():
        result = implies_word(
            inst.sigma,
            inst.phi,
            with_proof=True,
            chase_steps=cfg.chase_steps,
            deadline=cfg.deadline,
        )
        cert_ok, note = _certificate_status(result, inst.sigma, inst.phi)
        return result.answer, cert_ok, note

    return _timed("word", body)


def _engine_local_extent(
    inst: FragmentInstance, cfg: OracleConfig
) -> EngineVerdict | None:
    if inst.context is not Context.SEMISTRUCTURED:
        return None
    if classify(inst.sigma, inst.phi) is not ProblemClass.LOCAL_EXTENT:
        return None

    def body():
        result = implies_local_extent(
            list(inst.sigma), inst.phi, with_proof=True
        )
        if result.proof is not None:
            # Lemma 5.3: the certificate proves the *reduced* word
            # instance (Sigma^2_K |- phi^2), so re-verify against it.
            rho, guard = infer_bounds(inst.phi)
            words, phi2 = reduce_to_word_problem(
                inst.sigma, inst.phi, rho, guard
            )
            ok = _verify_proof(result.proof, words, phi2)
            note = (
                ""
                if ok
                else "reduced-instance proof failed independent check_proof"
            )
            return result.answer, ok, note
        cert_ok, note = _certificate_status(result, inst.sigma, inst.phi)
        return result.answer, cert_ok, note

    return _timed("local-extent", body)


def _engine_typed_m(
    inst: FragmentInstance, cfg: OracleConfig
) -> EngineVerdict | None:
    if inst.context is not Context.M or inst.schema is None:
        return None

    def body():
        result = implies_typed_m(
            inst.schema, inst.sigma, inst.phi, with_proof=True
        )
        cert_ok, note = _certificate_status(result, inst.sigma, inst.phi)
        return result.answer, cert_ok, note

    return _timed("typed-M", body)


def _engine_chase(
    inst: FragmentInstance, cfg: OracleConfig
) -> EngineVerdict | None:
    typed = inst.context is not Context.SEMISTRUCTURED

    def body():
        result = chase_implication(
            list(inst.sigma),
            inst.phi,
            max_steps=cfg.chase_steps,
            deadline=cfg.deadline,
        )
        if typed and result.answer is Trilean.FALSE:
            # An untyped fixpoint counter-model proves nothing about
            # U(Delta): only the TRUE direction transfers.
            return (
                Trilean.UNKNOWN,
                None,
                "untyped chase FALSE does not transfer to the typed context",
            )
        cert_ok, note = _certificate_status(result, inst.sigma, inst.phi)
        return result.answer, cert_ok, note

    return _timed("chase", body)


def _engine_countermodel(
    inst: FragmentInstance, cfg: OracleConfig
) -> EngineVerdict | None:
    if inst.context is not Context.SEMISTRUCTURED:
        return None

    def body():
        graph = find_countermodel(
            inst.sigma,
            inst.phi,
            max_nodes=cfg.countermodel_nodes,
            deadline=cfg.deadline,
        )
        if graph is None:
            return (
                Trilean.UNKNOWN,
                None,
                f"no counter-model within {cfg.countermodel_nodes} nodes",
            )
        ok = verify_countermodel(graph, inst.sigma, inst.phi)
        return Trilean.FALSE, ok, "" if ok else "hit failed recheck"

    return _timed("countermodel", body)


def _brute_space(labels: int, max_nodes: int) -> int:
    return sum(2 ** (labels * n * n) for n in range(1, max_nodes + 1))


def _engine_brute_force(
    inst: FragmentInstance, cfg: OracleConfig
) -> EngineVerdict | None:
    if inst.context is not Context.SEMISTRUCTURED:
        return None
    labels = infer_alphabet(inst.sigma, inst.phi)
    if _brute_space(len(labels), cfg.brute_max_nodes) > cfg.brute_space_cap:
        return None  # recorded by absence; the report counts engine runs

    def body():
        graph = brute_force_countermodel(
            inst.sigma, inst.phi, max_nodes=cfg.brute_max_nodes
        )
        if graph is None:
            return (
                Trilean.UNKNOWN,
                None,
                f"no counter-model within {cfg.brute_max_nodes} nodes",
            )
        ok = verify_countermodel(graph, inst.sigma, inst.phi)
        return Trilean.FALSE, ok, "" if ok else "hit failed recheck"

    return _timed("brute-force", body)


def _make_portfolio_engine(jobs: int):
    def engine(
        inst: FragmentInstance, cfg: OracleConfig
    ) -> EngineVerdict | None:
        if inst.context is not Context.SEMISTRUCTURED:
            return None

        def body():
            problem = ImplicationProblem(
                inst.sigma, inst.phi, inst.context, schema=inst.schema
            )
            result = run_portfolio(
                problem,
                jobs=jobs,
                budget=Budget(deadline=cfg.deadline),
                chase_steps=cfg.chase_steps,
                countermodel_nodes=cfg.countermodel_nodes,
                # The cross-validation point of a jobs>1 oracle is the
                # pooled runtime itself (and, under --inject, its fault
                # paths), so bypass the cost model's inline shortcut.
                execution="pool" if jobs > 1 else "auto",
            )
            cert_ok, note = _certificate_status(result, inst.sigma, inst.phi)
            return result.answer, cert_ok, note

        return _timed(f"portfolio-j{jobs}", body)

    return engine


def _engine_enumerate_m(
    inst: FragmentInstance, cfg: OracleConfig
) -> EngineVerdict | None:
    if inst.context is not Context.M or inst.schema is None:
        return None

    def body():
        graph = find_m_countermodel(
            inst.schema,
            inst.sigma,
            inst.phi,
            max_per_class=cfg.typed_max_per_class,
            limit=cfg.typed_limit,
        )
        if graph is None:
            return (
                Trilean.UNKNOWN,
                None,
                f"no counter-model in the first {cfg.typed_limit} members "
                "of U_f(Delta)",
            )
        ok = verify_countermodel(graph, inst.sigma, inst.phi)
        return Trilean.FALSE, ok, "" if ok else "hit failed recheck"

    return _timed("enumerate-M", body)


#: Engine name -> engine function, in matrix order.  ``portfolio-jN``
#: entries are materialized per config (see :func:`run_engines`).
_STATIC_ENGINES: dict[
    str, Callable[[FragmentInstance, OracleConfig], EngineVerdict | None]
] = {
    "word": _engine_word,
    "local-extent": _engine_local_extent,
    "typed-M": _engine_typed_m,
    "chase": _engine_chase,
    "countermodel": _engine_countermodel,
    "brute-force": _engine_brute_force,
    "enumerate-M": _engine_enumerate_m,
}


def _engine_table(
    cfg: OracleConfig,
    extra: Mapping[
        str, Callable[[FragmentInstance, OracleConfig], EngineVerdict | None]
    ]
    | None = None,
) -> dict[str, Callable]:
    table = dict(_STATIC_ENGINES)
    for jobs in cfg.portfolio_jobs:
        table[f"portfolio-j{jobs}"] = _make_portfolio_engine(jobs)
    if extra:
        table.update(extra)
    return table


def run_engines(
    instance: FragmentInstance,
    config: OracleConfig | None = None,
    extra: Mapping[
        str, Callable[[FragmentInstance, OracleConfig], EngineVerdict | None]
    ]
    | None = None,
) -> list[EngineVerdict]:
    """Run the full applicable engine matrix on one instance.

    ``extra`` engines (used by the shrinker tests to inject a
    deliberately broken decider) participate in the matrix on equal
    terms.
    """
    config = config or OracleConfig()
    verdicts = []
    for engine in _engine_table(config, extra).values():
        verdict = engine(instance, config)
        if verdict is not None:
            verdicts.append(verdict)
    return verdicts


def run_named_engine(
    name: str,
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    schema: Schema | None = None,
    config: OracleConfig | None = None,
    extra: Mapping[
        str, Callable[[FragmentInstance, OracleConfig], EngineVerdict | None]
    ]
    | None = None,
) -> EngineVerdict:
    """Run one engine by name on a bare (sigma, phi) instance.

    The handle the shrinker's reproducers and the emitted regression
    tests call: engine names are exactly the matrix names
    (``portfolio-j7`` works for any job count).
    """
    config = config or OracleConfig()
    context = Context.M if schema is not None else Context.SEMISTRUCTURED
    instance = FragmentInstance(
        fragment="ad-hoc",
        sigma=tuple(sigma),
        phi=phi,
        context=context,
        schema=schema,
    )
    table = _engine_table(config, extra)
    if name not in table and name.startswith("portfolio-j"):
        table[name] = _make_portfolio_engine(int(name[len("portfolio-j"):]))
    if name not in table:
        raise KeyError(f"unknown engine {name!r}; have {sorted(table)}")
    verdict = table[name](instance, config)
    if verdict is None:
        return EngineVerdict(
            engine=name,
            answer=Trilean.UNKNOWN,
            note="engine not applicable to this instance",
        )
    return verdict


def find_disagreements(
    verdicts: Sequence[EngineVerdict],
) -> list[Disagreement]:
    """Three-valued-aware disagreement detection.

    UNKNOWN never disagrees with anything; two *definite* answers that
    differ always do, because every engine's definite answers are
    (soundness-filtered) ground truth claims.  A failed certificate is
    a disagreement of an engine with its own evidence.
    """
    out = []
    definite = [v for v in verdicts if v.answer.is_definite]
    for a, b in combinations(definite, 2):
        if a.answer is not b.answer:
            out.append(
                Disagreement(
                    kind="definite-conflict",
                    engines=(a.engine, b.engine),
                    answers=(a.answer.value, b.answer.value),
                )
            )
    for v in verdicts:
        if v.certificate_ok is False:
            out.append(
                Disagreement(
                    kind="bad-certificate",
                    engines=(v.engine,),
                    answers=(v.answer.value,),
                    detail=v.note,
                )
            )
    return out


def with_deadline(config: OracleConfig, deadline: float | None) -> OracleConfig:
    """A copy of ``config`` carrying an absolute deadline."""
    return replace(config, deadline=deadline)
