"""Differential cross-validation of the Table 1 engines.

DESIGN.md's reproduction contract asks for *empirical agreement of
each decider with an independent oracle* on every Table 1 cell.  The
hand-picked fixtures in ``tests/`` witness agreement on a few dozen
instances; this package hunts for disagreements on millions more:

* :mod:`repro.diffcheck.generators` — seeded random instance
  generators, one per constraint fragment (P_w with and without
  equality-generating conclusions, P_w(K), local extent, general P_c,
  and typed instances paired with random M schemas);
* :mod:`repro.diffcheck.oracles` — the engine matrix: every generated
  instance runs through every applicable engine (complete deciders,
  the chase, canonical and brute-force counter-model search, the
  portfolio at several job counts, the U_f(Delta) enumerator), with
  three-valued-aware disagreement detection and independent
  re-verification of every certificate;
* :mod:`repro.diffcheck.shrink` — a delta-debugging shrinker that
  minimizes a disagreeing instance (dropping premises, shortening
  paths) while the disagreement reproduces, and renders the result as
  a ready-to-paste regression test;
* :mod:`repro.diffcheck.runner` — the ``repro fuzz`` driver with a
  machine-readable JSON report.

The finite/unrestricted boundary under type-like constraints is
exactly where implementations drift apart silently (Amarilli &
Benedikt 2015; Toman & Weddell 2005-2008 on DLFD), so the harness is
the correctness backbone the Table 1 benchmarks sit on.
"""

from repro.diffcheck.generators import (
    FRAGMENT_GENERATORS,
    FragmentInstance,
    generate_instance,
)
from repro.diffcheck.oracles import (
    Disagreement,
    EngineVerdict,
    OracleConfig,
    find_disagreements,
    run_engines,
    run_named_engine,
)
from repro.diffcheck.queryfuzz import (
    QueryDisagreementRecord,
    QueryFuzzReport,
    fuzz_queries,
)
from repro.diffcheck.shrink import emit_regression_test, shrink_instance
from repro.diffcheck.runner import FuzzReport, fuzz, make_reproducer

__all__ = [
    "FRAGMENT_GENERATORS",
    "FragmentInstance",
    "generate_instance",
    "Disagreement",
    "EngineVerdict",
    "OracleConfig",
    "find_disagreements",
    "run_engines",
    "run_named_engine",
    "emit_regression_test",
    "shrink_instance",
    "FuzzReport",
    "fuzz",
    "make_reproducer",
    "QueryDisagreementRecord",
    "QueryFuzzReport",
    "fuzz_queries",
]
