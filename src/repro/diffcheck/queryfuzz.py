"""Differential fuzzing of the query layer.

The optimizer and the containment checker both promise *soundness on
Sigma-models*: an optimized union must return exactly the answers of
the original union on every database satisfying Sigma, and a definite
containment verdict must agree with brute-force answer-set inclusion.
This module hunts for violations of those promises on thousands of
small random instances:

* random word-constraint Sigmas (equality-generating conclusions
  included — the fragment that used to crash the optimizer);
* random unions of word queries, optimized and then evaluated against
  unoptimized on random graphs *chased to a Sigma-model* (non-fixpoint
  chases are skipped — the promise only covers Sigma-models);
* random regular-pattern pairs, whose three-valued containment verdict
  is cross-checked directionally: TRUE must hold on every sampled
  Sigma-model, FALSE must be confirmed by an explicit chased witness
  countermodel on decidable cells, UNKNOWN asserts nothing;
* every hit is delta-debugged down to a minimal Sigma (and branch
  list) that still reproduces, and rendered as a paste-ready
  regression comment.

Exit contract mirrors :mod:`repro.diffcheck.runner`: a clean sweep is
the CI gate the query benchmarks sit on.
"""

from __future__ import annotations

import json
import random
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.constraints.ast import PathConstraint
from repro.constraints.ast import word as word_constraint
from repro.graph.builders import random_graph
from repro.graph.structure import Graph
from repro.paths import Path
from repro.query.containment import QueryContainmentChecker
from repro.query.optimizer import WordQueryOptimizer
from repro.query.rpq import evaluate_rpq, evaluate_word
from repro.reasoning.chase import chase
from repro.truth import Trilean

#: Chase budget per sampled graph; non-fixpoint chases are skipped.
MODEL_CHASE_STEPS = 300


@dataclass
class QueryDisagreementRecord:
    """One query-layer fuzz hit, shrunk and rendered."""

    kind: str
    seed: int
    index: int
    detail: str
    sigma: tuple[str, ...]
    query: str
    shrunk_sigma: tuple[str, ...]
    shrunk_query: str
    regression_test: str

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "index": self.index,
            "detail": self.detail,
            "sigma": list(self.sigma),
            "query": self.query,
            "shrunk": {
                "sigma": list(self.shrunk_sigma),
                "query": self.shrunk_query,
            },
            "regression_test": self.regression_test,
        }


@dataclass
class QueryFuzzReport:
    """Everything one query-fuzz sweep learned, machine-readable."""

    seed: int
    rounds: int
    optimizer_checks: int = 0
    containment_checks: int = 0
    models_checked: int = 0
    models_skipped: int = 0
    verdict_true: int = 0
    verdict_false: int = 0
    verdict_unknown: int = 0
    branches_saved: int = 0
    disagreements: list[QueryDisagreementRecord] = field(
        default_factory=list
    )
    elapsed: float = 0.0
    deadline_hit: bool = False
    aborted: bool = False

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "ok": self.ok,
            "elapsed": round(self.elapsed, 3),
            "deadline_hit": self.deadline_hit,
            "aborted": self.aborted,
            "optimizer_checks": self.optimizer_checks,
            "containment_checks": self.containment_checks,
            "models_checked": self.models_checked,
            "models_skipped": self.models_skipped,
            "verdicts": {
                "true": self.verdict_true,
                "false": self.verdict_false,
                "unknown": self.verdict_unknown,
            },
            "branches_saved": self.branches_saved,
            "disagreements": [d.to_dict() for d in self.disagreements],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        lines = [
            f"query fuzz seed={self.seed}: {self.rounds} rounds, "
            f"{self.optimizer_checks} union checks, "
            f"{self.containment_checks} containment checks, "
            f"{self.models_checked} Sigma-models "
            f"({self.models_skipped} skipped), "
            f"{len(self.disagreements)} disagreement(s) "
            f"in {self.elapsed:.1f}s"
            + (" [deadline hit]" if self.deadline_hit else "")
            + (" [ABORTED]" if self.aborted else "")
        ]
        lines.append(
            f"  verdicts: T={self.verdict_true} F={self.verdict_false} "
            f"?={self.verdict_unknown}; "
            f"branches saved by optimization: {self.branches_saved}"
        )
        for record in self.disagreements:
            lines.append(f"  HIT {record.kind}: {record.detail}")
        return "\n".join(lines)


# -- generation ------------------------------------------------------------


def _random_word(rng: random.Random, labels: Sequence[str]) -> Path:
    return Path(
        tuple(rng.choice(labels) for _ in range(rng.randint(1, 3)))
    )


def _random_sigma(
    rng: random.Random, labels: Sequence[str], allow_egds: bool
) -> tuple[PathConstraint, ...]:
    sigma = []
    for _ in range(rng.randint(1, 4)):
        lhs = _random_word(rng, labels)
        if allow_egds and rng.random() < 0.3:
            sigma.append(word_constraint(lhs, Path.empty()))
        else:
            sigma.append(word_constraint(lhs, _random_word(rng, labels)))
    return tuple(sigma)


def _random_branches(
    rng: random.Random, labels: Sequence[str]
) -> tuple[Path, ...]:
    branches = [
        _random_word(rng, labels) for _ in range(rng.randint(2, 5))
    ]
    if len(branches) > 1 and rng.random() < 0.3:
        branches.append(rng.choice(branches))  # deliberate duplicate
    return tuple(branches)


def _random_pattern(rng: random.Random, labels: Sequence[str]) -> str:
    shape = rng.random()
    if shape < 0.4:
        return str(_random_word(rng, labels))
    if shape < 0.7:
        return (
            f"{_random_word(rng, labels)} | {_random_word(rng, labels)}"
        )
    prefix = _random_word(rng, labels)
    starred = rng.choice(labels)
    suffix = rng.choice(labels)
    return f"{prefix}.({starred})*.{suffix}"


def _random_pair(
    rng: random.Random, labels: Sequence[str]
) -> tuple[str, str]:
    """A containment question; sometimes syntactically related so TRUE
    verdicts (left c left | extra) get exercised, not just FALSE."""
    left = _random_pattern(rng, labels)
    if rng.random() < 0.35:
        return left, f"{left} | {_random_word(rng, labels)}"
    return left, _random_pattern(rng, labels)


def _sigma_models(
    rng: random.Random,
    sigma: Sequence[PathConstraint],
    labels: Sequence[str],
    report: QueryFuzzReport,
    count: int = 2,
) -> list[Graph]:
    """Random graphs chased to a Sigma-fixpoint (skipping the rest)."""
    models = []
    for _ in range(count):
        g = random_graph(
            node_count=rng.randint(3, 6),
            labels=list(labels),
            edge_probability=0.25,
            seed=rng.randrange(2**30),
        )
        outcome = chase(g, list(sigma), max_steps=MODEL_CHASE_STEPS)
        if outcome.fixpoint:
            models.append(outcome.graph)
            report.models_checked += 1
        else:
            report.models_skipped += 1
    return models


# -- oracles ---------------------------------------------------------------


def _union_answers(graph: Graph, branches: Sequence[Path]) -> frozenset:
    answers = set()
    for branch in branches:
        answers |= evaluate_word(graph, branch).answers
    return frozenset(answers)


def _union_mismatch(
    sigma: Sequence[PathConstraint],
    branches: Sequence[Path],
    models: Sequence[Graph],
):
    """Run the optimizer and compare answer sets.

    Returns ``(detail, report)`` — detail is None when clean.  Also
    enforces the accounting invariant
    ``len(report.pruned) == report.branches_saved``.  The per-solve
    deadline keeps equality-generating chase fallbacks cheap; a solve
    cut short answers UNKNOWN, which the optimizer must treat as
    "keep the branch" (exactly the conservatism under test).
    """
    optimizer = WordQueryOptimizer(sigma, deadline=0.25)
    try:
        report = optimizer.optimize_union(branches)
    except Exception as exc:  # a legal union + legal Sigma must not raise
        return f"optimize_union raised {type(exc).__name__}: {exc}", None
    if len(report.pruned) != report.branches_saved:
        return (
            f"accounting broken: {len(report.pruned)} pruned pairs vs "
            f"branches_saved={report.branches_saved}"
        ), report
    for model in models:
        before = _union_answers(model, list(report.original))
        after = _union_answers(model, list(report.optimized))
        if before != after:
            return (
                f"optimized union changed answers on a Sigma-model: "
                f"{sorted(map(repr, before))} != "
                f"{sorted(map(repr, after))} "
                f"(plan {[str(p) for p in report.optimized]})"
            ), report
    return None, report


def _containment_mismatch(
    sigma: Sequence[PathConstraint],
    left: str,
    right: str,
    models: Sequence[Graph],
    report: QueryFuzzReport | None = None,
) -> str | None:
    """Directional cross-check of one containment verdict.

    TRUE must hold on every sampled Sigma-model; FALSE on a decidable
    cell must be confirmed by its own chased witness countermodel
    (where the chase terminates); UNKNOWN asserts nothing.
    """
    checker = QueryContainmentChecker(
        sigma, deadline=0.25, enumeration_count=16
    )
    result = checker.contains(left, right)
    if report is not None:
        if result.verdict is Trilean.TRUE:
            report.verdict_true += 1
        elif result.verdict is Trilean.FALSE:
            report.verdict_false += 1
        else:
            report.verdict_unknown += 1
    if result.verdict is Trilean.TRUE:
        for model in models:
            la = evaluate_rpq(model, left).answers
            ra = evaluate_rpq(model, right).answers
            if not la <= ra:
                return (
                    f"TRUE verdict ({result.method}) but answers leak "
                    f"on a Sigma-model: {sorted(map(repr, la - ra))} "
                    f"match only the left side"
                )
    elif result.verdict is Trilean.FALSE and result.decidable:
        witness = result.witness
        if witness is None:
            return f"FALSE verdict ({result.method}) carries no witness"
        from repro.graph.builders import line_graph

        outcome = chase(
            line_graph(witness.labels), list(sigma),
            max_steps=MODEL_CHASE_STEPS,
        )
        if outcome.fixpoint:
            la = evaluate_rpq(outcome.graph, left).answers
            ra = evaluate_rpq(outcome.graph, right).answers
            if la <= ra:
                return (
                    f"FALSE verdict ({result.method}) with witness "
                    f"{witness}, but the chased witness tableau "
                    f"satisfies the containment"
                )
    return None


# -- shrinking -------------------------------------------------------------


def _ddmin(
    items: tuple, reproduces: Callable[[tuple], bool]
) -> tuple:
    """Greedy one-at-a-time delta debugging (instances are tiny)."""
    current = items
    progress = True
    while progress:
        progress = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1:]
            try:
                hit = reproduces(candidate)
            except Exception:
                hit = True  # a crash during replay is still the bug
            if hit:
                current = candidate
                progress = True
                break
    return current


def _emit_test(
    kind: str,
    sigma: Sequence[PathConstraint],
    query: str,
    detail: str,
    seed_note: str,
) -> str:
    return (
        f"# query-fuzz {kind}: {seed_note}\n"
        f"# sigma = {[str(psi) for psi in sigma]!r}\n"
        f"# query = {query!r}\n"
        f"# {detail}\n"
    )


# -- the driver ------------------------------------------------------------


def fuzz_queries(
    seed: int = 0,
    rounds: int = 25,
    labels: Sequence[str] = ("a", "b"),
    deadline: float | None = None,
    shrink: bool = True,
    allow_egds: bool = True,
) -> QueryFuzzReport:
    """Run one query-layer differential sweep.

    Each round draws a Sigma (optionally with equality-generating
    conclusions), a union of word queries and a regular-pattern pair,
    samples Sigma-models, and cross-checks the optimizer and the
    containment checker against brute-force evaluation.  ``deadline``
    is a relative budget in seconds for the whole sweep.
    """
    began = time.monotonic()
    absolute = None if deadline is None else began + deadline
    report = QueryFuzzReport(seed=seed, rounds=rounds)
    try:
        for index in range(rounds):
            if absolute is not None and time.monotonic() > absolute:
                report.deadline_hit = True
                break
            rng = random.Random(seed * 1_000_003 + index)
            sigma = _random_sigma(rng, labels, allow_egds)
            models = _sigma_models(rng, sigma, labels, report)

            branches = _random_branches(rng, labels)
            report.optimizer_checks += 1
            detail, opt_report = _union_mismatch(sigma, branches, models)
            if opt_report is not None:
                report.branches_saved += opt_report.branches_saved
            if detail is not None:
                query = " | ".join(str(b) for b in branches)
                shrunk_sigma, shrunk_branches = sigma, branches
                if shrink:
                    shrunk_sigma = _ddmin(
                        sigma,
                        lambda s: _union_mismatch(s, shrunk_branches, models)[0]
                        is not None,
                    )
                    shrunk_branches = _ddmin(
                        branches,
                        lambda b: len(b) > 0
                        and _union_mismatch(shrunk_sigma, b, models)[0]
                        is not None,
                    )
                shrunk_query = " | ".join(str(b) for b in shrunk_branches)
                note = f"seed={seed} index={index}"
                report.disagreements.append(
                    QueryDisagreementRecord(
                        kind="union-answers-changed",
                        seed=seed,
                        index=index,
                        detail=detail,
                        sigma=tuple(str(psi) for psi in sigma),
                        query=query,
                        shrunk_sigma=tuple(
                            str(psi) for psi in shrunk_sigma
                        ),
                        shrunk_query=shrunk_query,
                        regression_test=_emit_test(
                            "union-answers-changed",
                            shrunk_sigma,
                            shrunk_query,
                            detail,
                            note,
                        ),
                    )
                )

            left, right = _random_pair(rng, labels)
            report.containment_checks += 1
            detail = _containment_mismatch(
                sigma, left, right, models, report
            )
            if detail is not None:
                query = f"{left} c {right}"
                shrunk_sigma = sigma
                if shrink:
                    shrunk_sigma = _ddmin(
                        sigma,
                        lambda s: _containment_mismatch(
                            s, left, right, models
                        )
                        is not None,
                    )
                note = f"seed={seed} index={index}"
                report.disagreements.append(
                    QueryDisagreementRecord(
                        kind="containment-verdict-wrong",
                        seed=seed,
                        index=index,
                        detail=detail,
                        sigma=tuple(str(psi) for psi in sigma),
                        query=query,
                        shrunk_sigma=tuple(
                            str(psi) for psi in shrunk_sigma
                        ),
                        shrunk_query=query,
                        regression_test=_emit_test(
                            "containment-verdict-wrong",
                            shrunk_sigma,
                            query,
                            detail,
                            note,
                        ),
                    )
                )
    except KeyboardInterrupt:
        report.aborted = True
    # Honest accounting: rounds records what actually ran, which a
    # deadline or an interrupt may have cut short.
    report.rounds = report.optimizer_checks
    report.elapsed = time.monotonic() - began
    return report
