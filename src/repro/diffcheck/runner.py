"""The ``repro fuzz`` driver: generate, cross-check, shrink, report.

One :func:`fuzz` call sweeps every fragment generator, runs each
instance through the engine matrix, and — for every disagreement —
builds a *reproducer* predicate (the exact engine pair re-run on the
candidate) and hands it to the delta-debugging shrinker.  The result
is a :class:`FuzzReport` that is JSON-serializable for CI and carries
a ready-to-paste regression test per (shrunk) disagreement.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.constraints.ast import PathConstraint
from repro.truth import Trilean

from repro.diffcheck.generators import (
    FRAGMENT_GENERATORS,
    FragmentInstance,
    generate_instance,
)
from repro.diffcheck.oracles import (
    Disagreement,
    OracleConfig,
    find_disagreements,
    run_engines,
    run_named_engine,
    with_deadline,
)
from repro.diffcheck.shrink import emit_regression_test, shrink_instance


@dataclass
class DisagreementRecord:
    """One fuzz hit: the original instance, its shrunk core, the test."""

    fragment: str
    seed: int
    index: int
    kind: str
    engines: tuple[str, ...]
    answers: tuple[str, ...]
    detail: str
    original_sigma: tuple[str, ...]
    original_phi: str
    shrunk_sigma: tuple[str, ...]
    shrunk_phi: str
    regression_test: str

    def to_dict(self) -> dict:
        return {
            "fragment": self.fragment,
            "seed": self.seed,
            "index": self.index,
            "kind": self.kind,
            "engines": list(self.engines),
            "answers": list(self.answers),
            "detail": self.detail,
            "original": {
                "sigma": list(self.original_sigma),
                "phi": self.original_phi,
            },
            "shrunk": {
                "sigma": list(self.shrunk_sigma),
                "phi": self.shrunk_phi,
            },
            "regression_test": self.regression_test,
        }


@dataclass
class FragmentStats:
    """Per-fragment tallies for the report."""

    instances: int = 0
    engine_runs: int = 0
    definite_true: int = 0
    definite_false: int = 0
    unknown: int = 0
    disagreements: int = 0

    def to_dict(self) -> dict:
        return {
            "instances": self.instances,
            "engine_runs": self.engine_runs,
            "definite_true": self.definite_true,
            "definite_false": self.definite_false,
            "unknown": self.unknown,
            "disagreements": self.disagreements,
        }


@dataclass
class FuzzReport:
    """Everything one fuzz sweep learned, machine-readable."""

    seed: int
    per_fragment: int
    fragments: dict[str, FragmentStats] = field(default_factory=dict)
    disagreements: list[DisagreementRecord] = field(default_factory=list)
    elapsed: float = 0.0
    deadline_hit: bool = False

    @property
    def ok(self) -> bool:
        """True when the sweep found zero disagreements."""
        return not self.disagreements

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "per_fragment": self.per_fragment,
            "ok": self.ok,
            "elapsed": round(self.elapsed, 3),
            "deadline_hit": self.deadline_hit,
            "fragments": {
                name: stats.to_dict()
                for name, stats in self.fragments.items()
            },
            "disagreements": [d.to_dict() for d in self.disagreements],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """A short human-readable verdict for the CLI."""
        total = sum(s.instances for s in self.fragments.values())
        runs = sum(s.engine_runs for s in self.fragments.values())
        lines = [
            f"fuzz seed={self.seed}: {total} instances, {runs} engine runs, "
            f"{len(self.disagreements)} disagreement(s) "
            f"in {self.elapsed:.1f}s"
            + (" [deadline hit]" if self.deadline_hit else "")
        ]
        for name, stats in self.fragments.items():
            lines.append(
                f"  {name:<12} n={stats.instances:<4} "
                f"T={stats.definite_true:<4} F={stats.definite_false:<4} "
                f"?={stats.unknown:<4} disagreements={stats.disagreements}"
            )
        return "\n".join(lines)


def make_reproducer(
    instance: FragmentInstance,
    disagreement: Disagreement,
    config: OracleConfig,
    extra=None,
) -> Callable[[tuple[PathConstraint, ...], PathConstraint], bool]:
    """A shrink predicate replaying exactly the disagreeing engines.

    For a definite conflict the candidate must make the *same* engine
    pair contradict again (any definite-vs-definite flavour counts, so
    the shrinker may legitimately simplify TRUE-vs-FALSE into
    FALSE-vs-TRUE); for a bad certificate the same engine must produce
    a failing certificate again.
    """
    schema = instance.schema

    def reproduces(
        sigma: tuple[PathConstraint, ...], phi: PathConstraint
    ) -> bool:
        verdicts = [
            run_named_engine(
                name, sigma, phi, schema=schema, config=config, extra=extra
            )
            for name in disagreement.engines
        ]
        if disagreement.kind == "bad-certificate":
            return any(v.certificate_ok is False for v in verdicts)
        definite = [v for v in verdicts if v.answer.is_definite]
        return any(
            a.answer is not b.answer
            for i, a in enumerate(definite)
            for b in definite[i + 1:]
        )

    return reproduces


def _strs(sigma: Sequence[PathConstraint]) -> tuple[str, ...]:
    return tuple(str(psi) for psi in sigma)


def fuzz(
    seed: int = 0,
    per_fragment: int = 10,
    deadline: float | None = None,
    fragments: Sequence[str] | None = None,
    config: OracleConfig | None = None,
    shrink: bool = True,
    extra=None,
) -> FuzzReport:
    """Run one differential sweep.

    ``deadline`` is a *relative* budget in seconds for the whole sweep
    (converted to an absolute one internally and threaded into every
    engine); instances past it are skipped and the report says so.
    ``fragments`` restricts the sweep to named generators; ``extra``
    injects additional engines (the tests use this to plant a
    deliberately broken decider and watch the pipeline catch it).
    """
    began = time.time()
    absolute = None if deadline is None else began + deadline
    config = with_deadline(config or OracleConfig(), absolute)
    names = list(fragments) if fragments is not None else list(
        FRAGMENT_GENERATORS
    )
    unknown = [n for n in names if n not in FRAGMENT_GENERATORS]
    if unknown:
        raise ValueError(
            f"unknown fragment(s) {unknown}; "
            f"have {sorted(FRAGMENT_GENERATORS)}"
        )

    report = FuzzReport(seed=seed, per_fragment=per_fragment)
    for name in names:
        stats = report.fragments.setdefault(name, FragmentStats())
        for index in range(per_fragment):
            if absolute is not None and time.time() > absolute:
                report.deadline_hit = True
                break
            instance = generate_instance(name, seed, index)
            verdicts = run_engines(instance, config, extra=extra)
            stats.instances += 1
            stats.engine_runs += len(verdicts)
            for v in verdicts:
                if v.answer is Trilean.TRUE:
                    stats.definite_true += 1
                elif v.answer is Trilean.FALSE:
                    stats.definite_false += 1
                else:
                    stats.unknown += 1
            for disagreement in find_disagreements(verdicts):
                stats.disagreements += 1
                report.disagreements.append(
                    _record(
                        instance,
                        disagreement,
                        seed,
                        index,
                        config,
                        shrink,
                        extra,
                    )
                )
        if report.deadline_hit:
            break
    report.elapsed = time.time() - began
    return report


def _record(
    instance: FragmentInstance,
    disagreement: Disagreement,
    seed: int,
    index: int,
    config: OracleConfig,
    shrink: bool,
    extra,
) -> DisagreementRecord:
    shrunk_sigma, shrunk_phi = instance.sigma, instance.phi
    if shrink:
        reproduces = make_reproducer(instance, disagreement, config, extra)
        shrunk_sigma, shrunk_phi = shrink_instance(
            instance.sigma, instance.phi, reproduces
        )
    test = emit_regression_test(
        shrunk_sigma,
        shrunk_phi,
        disagreement.engines,
        disagreement.answers,
        schema=instance.schema,
        kind=disagreement.kind,
        seed_note=f"fragment={instance.fragment} seed={seed} index={index}",
    )
    return DisagreementRecord(
        fragment=instance.fragment,
        seed=seed,
        index=index,
        kind=disagreement.kind,
        engines=disagreement.engines,
        answers=disagreement.answers,
        detail=disagreement.detail,
        original_sigma=_strs(instance.sigma),
        original_phi=str(instance.phi),
        shrunk_sigma=_strs(shrunk_sigma),
        shrunk_phi=str(shrunk_phi),
        regression_test=test,
    )
