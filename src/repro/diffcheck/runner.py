"""The ``repro fuzz`` driver: generate, cross-check, shrink, report.

One :func:`fuzz` call sweeps every fragment generator, runs each
instance through the engine matrix, and — for every disagreement —
builds a *reproducer* predicate (the exact engine pair re-run on the
candidate) and hands it to the delta-debugging shrinker.  The result
is a :class:`FuzzReport` that is JSON-serializable for CI and carries
a ready-to-paste regression test per (shrunk) disagreement.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.constraints.ast import PathConstraint
from repro.errors import ReproError
from repro.reasoning.cache import ImplicationCache
from repro.reasoning.dispatcher import Context, ImplicationProblem, solve
from repro.reasoning.faultinject import FaultPlan
from repro.reasoning.portfolio import Budget, run_portfolio
from repro.truth import Trilean

from repro.diffcheck.generators import (
    FRAGMENT_GENERATORS,
    FragmentInstance,
    generate_instance,
)
from repro.diffcheck.oracles import (
    Disagreement,
    EngineVerdict,
    OracleConfig,
    find_disagreements,
    run_engines,
    run_named_engine,
    verify_countermodel,
    with_deadline,
)
from repro.diffcheck.shrink import emit_regression_test, shrink_instance


@dataclass
class DisagreementRecord:
    """One fuzz hit: the original instance, its shrunk core, the test."""

    fragment: str
    seed: int
    index: int
    kind: str
    engines: tuple[str, ...]
    answers: tuple[str, ...]
    detail: str
    original_sigma: tuple[str, ...]
    original_phi: str
    shrunk_sigma: tuple[str, ...]
    shrunk_phi: str
    regression_test: str

    def to_dict(self) -> dict:
        return {
            "fragment": self.fragment,
            "seed": self.seed,
            "index": self.index,
            "kind": self.kind,
            "engines": list(self.engines),
            "answers": list(self.answers),
            "detail": self.detail,
            "original": {
                "sigma": list(self.original_sigma),
                "phi": self.original_phi,
            },
            "shrunk": {
                "sigma": list(self.shrunk_sigma),
                "phi": self.shrunk_phi,
            },
            "regression_test": self.regression_test,
        }


@dataclass
class FragmentStats:
    """Per-fragment tallies for the report."""

    instances: int = 0
    engine_runs: int = 0
    definite_true: int = 0
    definite_false: int = 0
    unknown: int = 0
    disagreements: int = 0
    injected_runs: int = 0
    injected_demotions: int = 0

    def to_dict(self) -> dict:
        return {
            "instances": self.instances,
            "engine_runs": self.engine_runs,
            "definite_true": self.definite_true,
            "definite_false": self.definite_false,
            "unknown": self.unknown,
            "disagreements": self.disagreements,
            "injected_runs": self.injected_runs,
            "injected_demotions": self.injected_demotions,
        }


@dataclass
class FuzzReport:
    """Everything one fuzz sweep learned, machine-readable."""

    seed: int
    per_fragment: int
    fragments: dict[str, FragmentStats] = field(default_factory=dict)
    disagreements: list[DisagreementRecord] = field(default_factory=list)
    elapsed: float = 0.0
    deadline_hit: bool = False
    #: fault-injection sweep settings and tallies (rate 0 = disabled).
    inject_rate: float = 0.0
    inject_seed: int = 0
    injected_runs: int = 0
    injected_demotions: int = 0
    #: cache differential settings and tallies (see ``fuzz(cache_check=)``).
    cache_check: bool = False
    cache_checks: int = 0
    cache_lookups: int = 0
    cache_hits: int = 0
    cache_flips: int = 0
    #: True when the sweep was cut short (KeyboardInterrupt or crash);
    #: all tallies up to the cut are valid.
    aborted: bool = False

    @property
    def ok(self) -> bool:
        """True when the sweep found zero disagreements."""
        return not self.disagreements

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "per_fragment": self.per_fragment,
            "ok": self.ok,
            "elapsed": round(self.elapsed, 3),
            "deadline_hit": self.deadline_hit,
            "inject_rate": self.inject_rate,
            "inject_seed": self.inject_seed,
            "injected_runs": self.injected_runs,
            "injected_demotions": self.injected_demotions,
            "cache_check": self.cache_check,
            "cache_checks": self.cache_checks,
            "cache_lookups": self.cache_lookups,
            "cache_hits": self.cache_hits,
            "cache_flips": self.cache_flips,
            "aborted": self.aborted,
            "fragments": {
                name: stats.to_dict()
                for name, stats in self.fragments.items()
            },
            "disagreements": [d.to_dict() for d in self.disagreements],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """A short human-readable verdict for the CLI."""
        total = sum(s.instances for s in self.fragments.values())
        runs = sum(s.engine_runs for s in self.fragments.values())
        lines = [
            f"fuzz seed={self.seed}: {total} instances, {runs} engine runs, "
            f"{len(self.disagreements)} disagreement(s) "
            f"in {self.elapsed:.1f}s"
            + (" [deadline hit]" if self.deadline_hit else "")
            + (" [ABORTED]" if self.aborted else "")
        ]
        if self.inject_rate > 0.0:
            lines.append(
                f"  fault injection: rate={self.inject_rate} "
                f"seed={self.inject_seed} runs={self.injected_runs} "
                f"demotions={self.injected_demotions} "
                f"(definite verdicts must survive or demote, never flip)"
            )
        if self.cache_check:
            rate = (
                self.cache_hits / self.cache_lookups
                if self.cache_lookups
                else 0.0
            )
            lines.append(
                f"  cache check: instances={self.cache_checks} "
                f"lookups={self.cache_lookups} hits={self.cache_hits} "
                f"(rate {rate:.0%}) flips={self.cache_flips} "
                f"(cold and cached verdicts must agree)"
            )
        for name, stats in self.fragments.items():
            lines.append(
                f"  {name:<12} n={stats.instances:<4} "
                f"T={stats.definite_true:<4} F={stats.definite_false:<4} "
                f"?={stats.unknown:<4} disagreements={stats.disagreements}"
            )
        return "\n".join(lines)


def make_reproducer(
    instance: FragmentInstance,
    disagreement: Disagreement,
    config: OracleConfig,
    extra=None,
) -> Callable[[tuple[PathConstraint, ...], PathConstraint], bool]:
    """A shrink predicate replaying exactly the disagreeing engines.

    For a definite conflict the candidate must make the *same* engine
    pair contradict again (any definite-vs-definite flavour counts, so
    the shrinker may legitimately simplify TRUE-vs-FALSE into
    FALSE-vs-TRUE); for a bad certificate the same engine must produce
    a failing certificate again.
    """
    schema = instance.schema

    def reproduces(
        sigma: tuple[PathConstraint, ...], phi: PathConstraint
    ) -> bool:
        verdicts = [
            run_named_engine(
                name, sigma, phi, schema=schema, config=config, extra=extra
            )
            for name in disagreement.engines
        ]
        if disagreement.kind == "bad-certificate":
            return any(v.certificate_ok is False for v in verdicts)
        definite = [v for v in verdicts if v.answer.is_definite]
        return any(
            a.answer is not b.answer
            for i, a in enumerate(definite)
            for b in definite[i + 1:]
        )

    return reproduces


def _strs(sigma: Sequence[PathConstraint]) -> tuple[str, ...]:
    return tuple(str(psi) for psi in sigma)


def fuzz(
    seed: int = 0,
    per_fragment: int = 10,
    deadline: float | None = None,
    fragments: Sequence[str] | None = None,
    config: OracleConfig | None = None,
    shrink: bool = True,
    extra=None,
    inject_rate: float = 0.0,
    inject_seed: int = 0,
    cache_check: bool = False,
    report_sink: dict | None = None,
) -> FuzzReport:
    """Run one differential sweep.

    ``deadline`` is a *relative* budget in seconds for the whole sweep
    (converted to an absolute ``time.monotonic()`` value internally and
    threaded into every engine); instances past it are skipped and the
    report says so.  ``fragments`` restricts the sweep to named
    generators; ``extra`` injects additional engines (the tests use
    this to plant a deliberately broken decider and watch the pipeline
    catch it).

    With ``inject_rate > 0`` every semistructured instance additionally
    re-runs each portfolio engine under a deterministic fault plan
    (seeded from ``inject_seed``, the sweep seed, the instance index
    and the job count) and cross-checks the injected verdict against
    the clean one: a definite verdict may survive or demote to UNKNOWN,
    but a TRUE<->FALSE flip is recorded as a disagreement — the
    soundness contract of the fault-tolerant runtime.

    With ``cache_check=True`` every instance is additionally solved
    cold (no cache) and again through an in-process implication cache
    shared by the whole sweep — warmed by every instance before it,
    so alpha-equivalent repeats replay stored verdicts.  A definite
    cold verdict and a definite cached verdict that differ are
    recorded as a ``cache-flip`` disagreement, and every replayed
    counter-model is re-verified against the instance: the cache may
    skip work, never change an answer.

    A ``KeyboardInterrupt`` mid-sweep does not lose the report: the
    partial report is returned with ``aborted=True`` (and is reachable
    even on a hard crash via ``report_sink``, a dict the in-progress
    report is published into under the ``"report"`` key).
    """
    began = time.monotonic()
    absolute = None if deadline is None else began + deadline
    config = with_deadline(config or OracleConfig(), absolute)
    names = list(fragments) if fragments is not None else list(
        FRAGMENT_GENERATORS
    )
    unknown = [n for n in names if n not in FRAGMENT_GENERATORS]
    if unknown:
        raise ValueError(
            f"unknown fragment(s) {unknown}; "
            f"have {sorted(FRAGMENT_GENERATORS)}"
        )
    if not 0.0 <= inject_rate <= 1.0:
        raise ValueError(f"inject rate {inject_rate} outside [0, 1]")

    report = FuzzReport(
        seed=seed,
        per_fragment=per_fragment,
        inject_rate=inject_rate,
        inject_seed=inject_seed,
        cache_check=cache_check,
    )
    warm_cache = ImplicationCache() if cache_check else None
    if report_sink is not None:
        report_sink["report"] = report
    try:
        for name in names:
            stats = report.fragments.setdefault(name, FragmentStats())
            for index in range(per_fragment):
                if absolute is not None and time.monotonic() > absolute:
                    report.deadline_hit = True
                    break
                instance = generate_instance(name, seed, index)
                verdicts = run_engines(instance, config, extra=extra)
                stats.instances += 1
                stats.engine_runs += len(verdicts)
                for v in verdicts:
                    if v.answer is Trilean.TRUE:
                        stats.definite_true += 1
                    elif v.answer is Trilean.FALSE:
                        stats.definite_false += 1
                    else:
                        stats.unknown += 1
                for disagreement in find_disagreements(verdicts):
                    stats.disagreements += 1
                    report.disagreements.append(
                        _record(
                            instance,
                            disagreement,
                            seed,
                            index,
                            config,
                            shrink,
                            extra,
                        )
                    )
                if inject_rate > 0.0:
                    _injected_pass(
                        report,
                        stats,
                        instance,
                        verdicts,
                        config,
                        seed,
                        index,
                        inject_rate,
                        inject_seed,
                    )
                if warm_cache is not None:
                    _cache_check_pass(
                        report, stats, instance, config, seed, index,
                        warm_cache,
                    )
            if report.deadline_hit:
                break
    except KeyboardInterrupt:
        report.aborted = True
    report.elapsed = time.monotonic() - began
    return report


def _injected_pass(
    report: FuzzReport,
    stats: FragmentStats,
    instance: FragmentInstance,
    verdicts: Sequence[EngineVerdict],
    config: OracleConfig,
    seed: int,
    index: int,
    rate: float,
    inject_seed: int,
) -> None:
    """Re-run the portfolio engines under injected faults and compare.

    The clean matrix already agreed with itself (any conflict was
    recorded above), so the clean portfolio verdict stands in for the
    oracle.  Acceptance: injected faults never flip a definite answer
    — they may only demote it to UNKNOWN, and every demotion must be
    accounted for by a recorded fault (or the sweep deadline).
    """
    if instance.context is not Context.SEMISTRUCTURED:
        return  # injection targets the supervised portfolio runtime
    baselines = {
        v.engine: v for v in verdicts if v.engine.startswith("portfolio-j")
    }
    problem = ImplicationProblem(
        instance.sigma, instance.phi, instance.context, schema=instance.schema
    )
    for jobs in config.portfolio_jobs:
        clean = baselines.get(f"portfolio-j{jobs}")
        if clean is None:
            continue
        plan_seed = (
            inject_seed * 1_000_003 + seed * 10_007 + index * 101 + jobs
        )
        plan = FaultPlan.at_rate(rate, plan_seed)
        result = run_portfolio(
            problem,
            jobs=jobs,
            budget=Budget(deadline=config.deadline),
            chase_steps=config.chase_steps,
            countermodel_nodes=config.countermodel_nodes,
            fault_plan=plan,
        )
        report.injected_runs += 1
        stats.injected_runs += 1
        engines = (f"portfolio-j{jobs}", f"portfolio-j{jobs}+inject")
        answers = (clean.answer.value, result.answer.value)
        detail = (
            f"plan={plan.describe()}; faults[{result.faults.describe()}]"
        )
        if (
            clean.answer.is_definite
            and result.answer.is_definite
            and result.answer is not clean.answer
        ):
            stats.disagreements += 1
            report.disagreements.append(
                _injected_record(
                    instance, "injected-flip", engines, answers, detail,
                    seed, index,
                )
            )
            continue
        if (
            result.answer is Trilean.FALSE
            and result.countermodel is not None
            and not verify_countermodel(
                result.countermodel, instance.sigma, instance.phi
            )
        ):
            stats.disagreements += 1
            report.disagreements.append(
                _injected_record(
                    instance,
                    "injected-bad-certificate",
                    engines,
                    answers,
                    detail,
                    seed,
                    index,
                )
            )
            continue
        if clean.answer.is_definite and result.answer is Trilean.UNKNOWN:
            report.injected_demotions += 1
            stats.injected_demotions += 1
            if result.faults.clean and config.deadline is None:
                # A demotion with neither a recorded fault nor a
                # deadline means the fault accounting lost an event.
                stats.disagreements += 1
                report.disagreements.append(
                    _injected_record(
                        instance,
                        "unrecorded-fault",
                        engines,
                        answers,
                        detail,
                        seed,
                        index,
                    )
                )


def _cache_check_pass(
    report: FuzzReport,
    stats: FragmentStats,
    instance: FragmentInstance,
    config: OracleConfig,
    seed: int,
    index: int,
    warm_cache: ImplicationCache,
) -> None:
    """Solve cold, then through the sweep-warmed cache, and compare.

    Three solves per instance, identical budgets: cold (no cache),
    warm (first sight stores; an alpha-equivalent repeat of an earlier
    instance replays), and replay (guaranteed to exercise the hit path
    for whatever the warm pass left behind).  Any definite-vs-definite
    difference is a ``cache-flip`` disagreement; a replayed
    counter-model that fails independent re-verification is a
    ``cache-bad-certificate``.
    """
    remaining = None
    if config.deadline is not None:
        remaining = max(0.05, config.deadline - time.monotonic())
    problem = ImplicationProblem(
        instance.sigma, instance.phi, instance.context, schema=instance.schema
    )

    def _solve(cache):
        return solve(
            problem,
            chase_steps=config.chase_steps,
            countermodel_nodes=config.countermodel_nodes,
            typed_search_limit=config.typed_limit,
            jobs=1,
            deadline=remaining,
            cache=cache,
        )

    try:
        cold = _solve(None)
        runs = [("cached-warm", _solve(warm_cache))]
        runs.append(("cached-replay", _solve(warm_cache)))
    except ReproError:
        # The oracle matrix wraps every engine call and turns a
        # budget-starved fragment raise into an UNKNOWN abstention; the
        # direct dispatcher path used here has no such wrapper.  With
        # no cold verdict to compare against there is nothing to
        # check, so skip the instance (UNKNOWN is never cached, so the
        # warm cache cannot have been poisoned either).
        return
    report.cache_checks += 1
    stats.engine_runs += 3
    for name, run in runs:
        info = run.cache
        report.cache_lookups += 1
        if info is not None and info.status == "hit":
            report.cache_hits += 1
        if (
            cold.answer.is_definite
            and run.answer.is_definite
            and run.answer is not cold.answer
        ):
            report.cache_flips += 1
            stats.disagreements += 1
            report.disagreements.append(
                _cache_record(
                    instance, "cache-flip", name, cold, run, seed, index
                )
            )
            continue
        if (
            info is not None
            and info.status == "hit"
            and run.countermodel is not None
            and not verify_countermodel(
                run.countermodel, instance.sigma, instance.phi
            )
        ):
            report.cache_flips += 1
            stats.disagreements += 1
            report.disagreements.append(
                _cache_record(
                    instance,
                    "cache-bad-certificate",
                    name,
                    cold,
                    run,
                    seed,
                    index,
                )
            )


def _cache_record(
    instance: FragmentInstance,
    kind: str,
    engine: str,
    cold,
    cached,
    seed: int,
    index: int,
) -> DisagreementRecord:
    """A disagreement record for a cache finding (never shrunk — the
    hit depends on the sweep's warming order, which ``detail`` names)."""
    sigma = _strs(instance.sigma)
    info = cached.cache
    detail = (
        f"cache={info.describe() if info is not None else 'none'}; "
        f"cold method={cold.method}; cached method={cached.method}"
    )
    test = (
        f"# {kind}: cold solve vs {engine} disagreed\n"
        f"# fragment={instance.fragment} seed={seed} index={index}\n"
        f"# {detail}\n"
        f"# sigma={list(sigma)!r}\n"
        f"# phi={str(instance.phi)!r}\n"
    )
    return DisagreementRecord(
        fragment=instance.fragment,
        seed=seed,
        index=index,
        kind=kind,
        engines=("cold-solve", engine),
        answers=(cold.answer.value, cached.answer.value),
        detail=detail,
        original_sigma=sigma,
        original_phi=str(instance.phi),
        shrunk_sigma=sigma,
        shrunk_phi=str(instance.phi),
        regression_test=test,
    )


def _injected_record(
    instance: FragmentInstance,
    kind: str,
    engines: tuple[str, ...],
    answers: tuple[str, ...],
    detail: str,
    seed: int,
    index: int,
) -> DisagreementRecord:
    """A disagreement record for an injection finding (never shrunk —
    reproduction needs the exact fault plan, which ``detail`` names)."""
    sigma = _strs(instance.sigma)
    test = (
        f"# {kind}: reproduce with REPRO_INJECT='{detail.split(';')[0][5:]}'\n"
        f"# fragment={instance.fragment} seed={seed} index={index}\n"
        f"# sigma={list(sigma)!r}\n"
        f"# phi={str(instance.phi)!r}\n"
    )
    return DisagreementRecord(
        fragment=instance.fragment,
        seed=seed,
        index=index,
        kind=kind,
        engines=engines,
        answers=answers,
        detail=detail,
        original_sigma=sigma,
        original_phi=str(instance.phi),
        shrunk_sigma=sigma,
        shrunk_phi=str(instance.phi),
        regression_test=test,
    )


def _record(
    instance: FragmentInstance,
    disagreement: Disagreement,
    seed: int,
    index: int,
    config: OracleConfig,
    shrink: bool,
    extra,
) -> DisagreementRecord:
    shrunk_sigma, shrunk_phi = instance.sigma, instance.phi
    if shrink:
        reproduces = make_reproducer(instance, disagreement, config, extra)
        shrunk_sigma, shrunk_phi = shrink_instance(
            instance.sigma, instance.phi, reproduces
        )
    test = emit_regression_test(
        shrunk_sigma,
        shrunk_phi,
        disagreement.engines,
        disagreement.answers,
        schema=instance.schema,
        kind=disagreement.kind,
        seed_note=f"fragment={instance.fragment} seed={seed} index={index}",
    )
    return DisagreementRecord(
        fragment=instance.fragment,
        seed=seed,
        index=index,
        kind=disagreement.kind,
        engines=disagreement.engines,
        answers=disagreement.answers,
        detail=disagreement.detail,
        original_sigma=_strs(instance.sigma),
        original_phi=str(instance.phi),
        shrunk_sigma=_strs(shrunk_sigma),
        shrunk_phi=str(shrunk_phi),
        regression_test=test,
    )
