"""Delta-debugging shrinker for disagreeing instances.

A fuzz hit is rarely minimal: the generators emit 2-4 premises with
paths up to four labels, while the underlying bug usually needs one or
two.  :func:`shrink_instance` greedily minimizes ``(sigma, phi)``
while a caller-supplied ``reproduces`` predicate keeps returning True:

1. drop whole premises, one at a time, largest index first;
2. shorten individual paths (the prefix/lhs/rhs of each premise and
   of the query) by dropping their first or last label.

Each pass restarts after any successful reduction, so the loop runs to
a fixpoint: no single drop or shortening preserves the disagreement.
That is the classic ddmin granularity-1 guarantee — the result is
1-minimal, not globally minimal, which in practice lands on 1-3
premises for every seeded bug we inject.

The predicate is called on *candidate* instances that may fall outside
the original fragment (dropping a premise can turn a P_w(K) set into
plain P_w, shortening can leave ``Paths(Delta)`` on typed instances).
Engines already abstain with UNKNOWN on what they cannot handle;
:func:`shrink_instance` additionally treats a predicate *exception* as
"does not reproduce", so the search never crashes mid-shrink.

:func:`emit_regression_test` renders the minimized instance as a
self-contained pytest function built on
:func:`repro.diffcheck.oracles.run_named_engine` — ready to paste into
``tests/`` next to the fix.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence

from repro.constraints.ast import PathConstraint
from repro.paths import Path
from repro.types.typesys import (
    AtomicType,
    ClassRef,
    RecordType,
    Schema,
    SetType,
)

ShrinkPredicate = Callable[
    [tuple[PathConstraint, ...], PathConstraint], bool
]


def _holds(
    reproduces: ShrinkPredicate,
    sigma: tuple[PathConstraint, ...],
    phi: PathConstraint,
) -> bool:
    try:
        return bool(reproduces(sigma, phi))
    except Exception:  # noqa: BLE001 — a crashing candidate is a non-repro
        return False


def _shorter_paths(path: Path) -> Iterator[Path]:
    """Candidate replacements for one path, in preference order."""
    labels = path.labels
    if not labels:
        return
    yield Path(labels[:-1])
    if len(labels) > 1:
        yield Path(labels[1:])


def _constraint_variants(psi: PathConstraint) -> Iterator[PathConstraint]:
    for shorter in _shorter_paths(psi.prefix):
        yield PathConstraint(shorter, psi.lhs, psi.rhs, psi.direction)
    for shorter in _shorter_paths(psi.lhs):
        yield PathConstraint(psi.prefix, shorter, psi.rhs, psi.direction)
    for shorter in _shorter_paths(psi.rhs):
        yield PathConstraint(psi.prefix, psi.lhs, shorter, psi.direction)


def shrink_instance(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    reproduces: ShrinkPredicate,
    max_rounds: int = 200,
) -> tuple[tuple[PathConstraint, ...], PathConstraint]:
    """Minimize ``(sigma, phi)`` while ``reproduces`` holds.

    Returns the instance unchanged if the predicate does not even hold
    on the input (nothing to shrink — the caller's reproducer is
    already stale).
    """
    sigma = tuple(sigma)
    if not _holds(reproduces, sigma, phi):
        return sigma, phi

    for _ in range(max_rounds):
        # Pass 1: drop whole premises, largest index first so the
        # tuple re-indexing never skips a candidate.
        for i in reversed(range(len(sigma))):
            candidate = sigma[:i] + sigma[i + 1:]
            if _holds(reproduces, candidate, phi):
                sigma = candidate
                break
        else:
            # Pass 2: shorten one path of one premise.
            for i, psi in enumerate(sigma):
                found = False
                for variant in _constraint_variants(psi):
                    candidate = sigma[:i] + (variant,) + sigma[i + 1:]
                    if _holds(reproduces, candidate, phi):
                        sigma, found = candidate, True
                        break
                if found:
                    break
            else:
                # Pass 3: shorten one path of the query.
                for variant in _constraint_variants(phi):
                    if _holds(reproduces, sigma, variant):
                        phi = variant
                        break
                else:
                    return sigma, phi  # fixpoint: 1-minimal
    return sigma, phi


# ---------------------------------------------------------------------------
# Rendering regression tests.
# ---------------------------------------------------------------------------


def _render_type(tp) -> str:
    if isinstance(tp, AtomicType):
        return f"AtomicType({tp.name!r})"
    if isinstance(tp, ClassRef):
        return f"ClassRef({tp.name!r})"
    if isinstance(tp, SetType):
        return f"SetType({_render_type(tp.element)})"
    if isinstance(tp, RecordType):
        fields = ", ".join(
            f"({name!r}, {_render_type(ft)})" for name, ft in tp.fields
        )
        return f"RecordType([{fields}])"
    raise TypeError(f"cannot render schema type {tp!r}")


def render_schema(schema: Schema) -> str:
    """Executable source text reconstructing ``schema``."""
    classes = ", ".join(
        f"{name!r}: {_render_type(tp)}"
        for name, tp in schema.classes.items()
    )
    return f"Schema({{{classes}}}, {_render_type(schema.db_type)})"


def emit_regression_test(
    sigma: Sequence[PathConstraint],
    phi: PathConstraint,
    engines: Sequence[str],
    answers: Sequence[str],
    schema: Schema | None = None,
    kind: str = "definite-conflict",
    seed_note: str = "",
) -> str:
    """A ready-to-paste pytest function pinning the disagreement.

    The test asserts the two engines *agree* — i.e. it fails on the
    current tree (documenting the bug) and passes once fixed.  For a
    bad certificate it asserts ``certificate_ok is not False``.
    """
    safe = "_".join(e.replace("-", "_") for e in engines)
    lines = []
    lines.append(f"def test_diffcheck_regression_{safe}():")
    header = f'    """Shrunk fuzz disagreement ({kind})'
    if seed_note:
        header += f"; {seed_note}"
    lines.append(header + '."""')
    lines.append(
        "    from repro.constraints import parse_constraint, "
        "parse_constraints"
    )
    lines.append("    from repro.diffcheck.oracles import run_named_engine")
    sigma_text = "\n".join(f"        {psi}" for psi in sigma)
    lines.append('    sigma = parse_constraints("""')
    lines.append(sigma_text if sigma_text else "")
    lines.append('    """)')
    lines.append(f'    phi = parse_constraint("{phi}")')
    if schema is not None:
        lines.append(
            "    from repro.types.typesys import ("
            "AtomicType, ClassRef, RecordType, Schema, SetType)"
        )
        lines.append(f"    schema = {render_schema(schema)}")
        schema_arg = ", schema=schema"
    else:
        schema_arg = ""
    for engine in engines:
        var = engine.replace("-", "_")
        lines.append(
            f'    {var} = run_named_engine("{engine}", sigma, phi'
            f"{schema_arg})"
        )
    if kind == "bad-certificate":
        var = engines[0].replace("-", "_")
        lines.append(f"    assert {var}.certificate_ok is not False, (")
        lines.append(f"        {var}.describe())")
    else:
        first = engines[0].replace("-", "_")
        for engine, answer in zip(engines[1:], answers[1:]):
            var = engine.replace("-", "_")
            lines.append(
                f"    assert not ({first}.answer.is_definite and "
                f"{var}.answer.is_definite and"
            )
            lines.append(
                f"                {first}.answer is not {var}.answer), ("
            )
            lines.append(
                f'        f"{{{first}.describe()}} vs {{{var}.describe()}}")'
            )
    return "\n".join(lines) + "\n"
