"""Direct evaluation of ``G |= phi`` (Definition 2.1 semantics).

For a forward constraint ``alpha :: beta => gamma``: for every node
``x`` with ``alpha(r, x)`` and every ``y`` with ``beta(x, y)``, check
``gamma(x, y)``; backward constraints check ``gamma(y, x)``.  The
evaluation is a few breadth-first path images — linear in the touched
edges per witness set — and returns the violating pairs, which the
chase consumes as repair obligations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.ast import PathConstraint
from repro.graph.structure import Graph, Node


@dataclass(frozen=True)
class CheckResult:
    """Outcome of checking one constraint on one graph.

    ``witnesses`` counts the (x, y) pairs the hypothesis produced;
    ``violating_pairs`` lists those that fail the conclusion.
    """

    constraint: PathConstraint
    holds: bool
    witnesses: int
    violating_pairs: tuple[tuple[Node, Node], ...]

    def __bool__(self) -> bool:
        return self.holds


def violations(
    graph: Graph, constraint: PathConstraint, limit: int | None = None
) -> list[tuple[Node, Node]]:
    """The (x, y) pairs violating the constraint (up to ``limit``)."""
    out: list[tuple[Node, Node]] = []
    prefix_nodes = graph.eval_path(constraint.prefix)
    for x in prefix_nodes:
        hypothesis_nodes = graph.eval_path(constraint.lhs, start=x)
        if not hypothesis_nodes:
            continue
        if constraint.is_forward():
            conclusion_nodes = graph.eval_path(constraint.rhs, start=x)
            for y in hypothesis_nodes:
                if y not in conclusion_nodes:
                    out.append((x, y))
                    if limit is not None and len(out) >= limit:
                        return out
        else:
            for y in hypothesis_nodes:
                if not graph.satisfies_path(constraint.rhs, y, x):
                    out.append((x, y))
                    if limit is not None and len(out) >= limit:
                        return out
    return out


def check(graph: Graph, constraint: PathConstraint) -> CheckResult:
    """Full check with witness accounting.

    >>> from repro.graph import figure1_graph
    >>> from repro.constraints import parse_constraint
    >>> g = figure1_graph()
    >>> check(g, parse_constraint("book.author => person")).holds
    True
    """
    witnesses = 0
    for x in graph.eval_path(constraint.prefix):
        witnesses += len(graph.eval_path(constraint.lhs, start=x))
    bad = tuple(violations(graph, constraint))
    return CheckResult(
        constraint=constraint,
        holds=not bad,
        witnesses=witnesses,
        violating_pairs=bad,
    )
