"""Direct evaluation of ``G |= phi`` (Definition 2.1 semantics).

For a forward constraint ``alpha :: beta => gamma``: for every node
``x`` with ``alpha(r, x)`` and every ``y`` with ``beta(x, y)``, check
``gamma(x, y)``; backward constraints check ``gamma(y, x)``.  The
evaluation is a few breadth-first path images — linear in the touched
edges per witness set — and returns the violating pairs, which the
chase consumes as repair obligations.

All path images are read through ``graph.path_cache``, so repeated
checks between mutations (the chase fixpoint test, shared prefixes
across a constraint set) are served from memoized images; generation
stamping makes a stale hit impossible.  Backward conclusions are
evaluated as *one* backward image ``{ y : gamma(y, x) }`` per witness
``x`` instead of a forward probe per pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.ast import PathConstraint
from repro.graph.structure import Graph, Node


@dataclass(frozen=True)
class CheckResult:
    """Outcome of checking one constraint on one graph.

    ``witnesses`` counts the (x, y) pairs the hypothesis produced;
    ``violating_pairs`` lists those that fail the conclusion.
    """

    constraint: PathConstraint
    holds: bool
    witnesses: int
    violating_pairs: tuple[tuple[Node, Node], ...]

    def __bool__(self) -> bool:
        return self.holds


def _conclusion_image(
    evaluator, constraint: PathConstraint, x: Node
) -> frozenset:
    """The set of ``y`` satisfying the conclusion at witness ``x``.

    Forward: ``{ y : gamma(x, y) }`` (one forward image).  Backward:
    ``{ y : gamma(y, x) }`` (one backward image — batched, instead of
    a ``satisfies_path`` probe per hypothesis pair).
    """
    if constraint.is_forward():
        return evaluator.eval_path(constraint.rhs, start=x)
    return evaluator.eval_path_backward(constraint.rhs, x)


def violations(
    graph: Graph, constraint: PathConstraint, limit: int | None = None
) -> list[tuple[Node, Node]]:
    """The (x, y) pairs violating the constraint (up to ``limit``)."""
    out: list[tuple[Node, Node]] = []
    evaluator = graph.path_cache
    for x in evaluator.eval_path(constraint.prefix):
        hypothesis_nodes = evaluator.eval_path(constraint.lhs, start=x)
        if not hypothesis_nodes:
            continue
        conclusion_nodes = _conclusion_image(evaluator, constraint, x)
        for y in hypothesis_nodes:
            if y not in conclusion_nodes:
                out.append((x, y))
                if limit is not None and len(out) >= limit:
                    return out
    return out


def check(graph: Graph, constraint: PathConstraint) -> CheckResult:
    """Full check with witness accounting, in a single pass: the
    witness count and the violating pairs come from the same traversal
    (images are evaluated once per witness, not twice).

    >>> from repro.graph import figure1_graph
    >>> from repro.constraints import parse_constraint
    >>> g = figure1_graph()
    >>> check(g, parse_constraint("book.author => person")).holds
    True
    """
    evaluator = graph.path_cache
    witnesses = 0
    bad: list[tuple[Node, Node]] = []
    for x in evaluator.eval_path(constraint.prefix):
        hypothesis_nodes = evaluator.eval_path(constraint.lhs, start=x)
        if not hypothesis_nodes:
            continue
        witnesses += len(hypothesis_nodes)
        conclusion_nodes = _conclusion_image(evaluator, constraint, x)
        bad.extend((x, y) for y in hypothesis_nodes if y not in conclusion_nodes)
    return CheckResult(
        constraint=constraint,
        holds=not bad,
        witnesses=witnesses,
        violating_pairs=tuple(bad),
    )
