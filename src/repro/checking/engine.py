"""Batch constraint validation with reporting.

``check_all`` validates a whole constraint set against a graph and
produces a report suitable for integrity-checking workflows (the
paper's motivating use of path constraints: "a fundamental part of the
semantics of the data").
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.checking.satisfaction import CheckResult, check
from repro.constraints.ast import PathConstraint
from repro.graph.structure import Graph


@dataclass
class ValidationReport:
    """Results of checking a constraint set against one graph."""

    results: list[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.holds for r in self.results)

    def __bool__(self) -> bool:
        return self.ok

    @property
    def failed(self) -> list[CheckResult]:
        return [r for r in self.results if not r.holds]

    @property
    def total_witnesses(self) -> int:
        return sum(r.witnesses for r in self.results)

    def summary(self) -> str:
        lines = [
            f"{len(self.results)} constraint(s) checked, "
            f"{len(self.failed)} failed, "
            f"{self.total_witnesses} witness pair(s) examined"
        ]
        for result in self.failed:
            pairs = ", ".join(
                f"({x!r}, {y!r})" for x, y in result.violating_pairs[:5]
            )
            suffix = (
                "" if len(result.violating_pairs) <= 5
                else f" ... +{len(result.violating_pairs) - 5}"
            )
            lines.append(f"  FAIL {result.constraint}: {pairs}{suffix}")
        return "\n".join(lines)


def check_all(
    graph: Graph, constraints: Iterable[PathConstraint]
) -> ValidationReport:
    """Check every constraint; never short-circuits, so the report is
    complete."""
    return ValidationReport(results=[check(graph, phi) for phi in constraints])


def satisfies_all(graph: Graph, constraints: Iterable[PathConstraint]) -> bool:
    """Fast boolean version (short-circuits on first failure)."""
    from repro.checking.satisfaction import violations

    return all(not violations(graph, phi, limit=1) for phi in constraints)
