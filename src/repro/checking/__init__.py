"""Constraint satisfaction: does a graph model a P_c constraint?

The oracle for everything else in the library — figures are verified,
chase results validated, and deciders cross-checked against this
module's direct evaluation of Definition 2.1's semantics.
"""

from repro.checking.satisfaction import CheckResult, check, violations
from repro.checking.engine import ValidationReport, check_all
from repro.checking.incremental import IncrementalChecker

__all__ = [
    "CheckResult",
    "check",
    "violations",
    "ValidationReport",
    "check_all",
    "IncrementalChecker",
]
