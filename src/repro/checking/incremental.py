"""Incremental integrity checking under edge insertions.

The validation engine of :mod:`repro.checking.engine` re-evaluates
every constraint from scratch; for the paper's motivating workload —
a database maintaining its integrity constraints while documents are
added — that is wasteful, because a new edge can only affect
constraints whose paths *mention its label*, and only through witness
pairs that *pass through* the edge.

:class:`IncrementalChecker` wraps a graph and a constraint set,
maintains the current violation set, and updates it after each
``add_edge`` by re-evaluating just the affected constraints, seeded
from the endpoints of the new edge:

* for a constraint ``alpha :: beta => gamma`` and a new edge
  ``l(u, v)``, new violations can only arise for prefix witnesses
  ``x`` that reach ``u`` (so the new edge extends an ``alpha`` or
  ``beta`` path) — found by evaluating the relevant path *suffixes*
  backward from ``u``;
* existing violations can only be *repaired* by the new edge if the
  conclusion path uses its label, so repaired pairs are rechecked
  directly.

The result is equivalent to full re-validation (asserted exhaustively
in the test suite) while touching a small neighbourhood per insert.

All image reads go through ``graph.path_cache``: one ``notify_edge``
evaluates the same prefix/conclusion images for several constraints
and witness pairs, and between two inserts the generation stamp
guarantees nothing stale survives the mutation.  Conclusion checks are
batched — one forward (or backward) image per witness ``x``, probed by
membership — instead of a fresh traversal per pair.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.checking.satisfaction import violations
from repro.constraints.ast import PathConstraint
from repro.graph.structure import Graph, Node
from repro.paths import Path


def _pairs_through_edge(
    graph: Graph, constraint: PathConstraint, src: Node, dst: Node, label: str
) -> set[tuple[Node, Node]]:
    """Witness pairs (x, y) whose alpha- or beta-path can traverse the
    new edge ``label(src, dst)``.

    For each occurrence of the label at position i of beta, x must
    reach ``src`` backwards through ``beta[:i]`` (and forwards be a
    prefix witness), and y lies in ``eval(beta[i+1:], dst)``.  For each
    occurrence at position i of alpha, the *new* prefix witnesses are
    ``eval(alpha[i+1:], dst)`` (the prefix is root-anchored, so only
    edges on a root-to-x alpha-path create new x values); for those x
    every beta-image y must be examined — they are genuinely new
    hypothesis witnesses.
    """
    pairs: set[tuple[Node, Node]] = set()
    evaluator = graph.path_cache
    prefix_nodes = evaluator.eval_path(constraint.prefix)
    for i, beta_label in enumerate(constraint.lhs.labels):
        if beta_label != label:
            continue
        xs = evaluator.eval_path_backward(constraint.lhs[:i], src) & prefix_nodes
        if not xs:
            continue
        ys = evaluator.eval_path(constraint.lhs[i + 1 :], start=dst)
        pairs.update((x, y) for x in xs for y in ys)
    for i, alpha_label in enumerate(constraint.prefix.labels):
        if alpha_label != label:
            continue
        # Is src actually reachable as an alpha[:i] node?  If not the
        # new edge cannot extend a prefix path.
        if src not in evaluator.eval_path(constraint.prefix[:i]):
            continue
        new_xs = evaluator.eval_path(constraint.prefix[i + 1 :], start=dst)
        for x in new_xs:
            for y in evaluator.eval_path(constraint.lhs, start=x):
                pairs.add((x, y))
    return pairs


class IncrementalChecker:
    """Maintains the violation set of (graph, constraints) under
    ``add_edge``.

    >>> from repro.constraints import parse_constraints
    >>> g = Graph(root="r")
    >>> checker = IncrementalChecker(
    ...     g, parse_constraints("book.author => person"))
    >>> checker.ok
    True
    >>> b = g.add_edge("r", "book", "b1")
    >>> checker.notify_edge("r", "book", "b1")
    >>> checker.ok
    True
    >>> _ = g.add_edge("b1", "author", "p1")
    >>> checker.notify_edge("b1", "author", "p1")
    >>> checker.ok
    False
    >>> _ = g.add_edge("r", "person", "p1")
    >>> checker.notify_edge("r", "person", "p1")
    >>> checker.ok
    True
    """

    def __init__(
        self, graph: Graph, constraints: Iterable[PathConstraint]
    ) -> None:
        self._graph = graph
        self._constraints = tuple(constraints)
        self._by_label: dict[str, list[PathConstraint]] = {}
        for constraint in self._constraints:
            for label in constraint.alphabet():
                self._by_label.setdefault(label, []).append(constraint)
        self._violations: dict[PathConstraint, set[tuple[Node, Node]]] = {
            constraint: set(violations(graph, constraint))
            for constraint in self._constraints
        }
        self._rechecks = 0

    # -- state ----------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not any(self._violations.values())

    @property
    def constraints(self) -> tuple[PathConstraint, ...]:
        return self._constraints

    def current_violations(
        self,
    ) -> dict[PathConstraint, frozenset[tuple[Node, Node]]]:
        return {
            constraint: frozenset(pairs)
            for constraint, pairs in self._violations.items()
            if pairs
        }

    @property
    def recheck_count(self) -> int:
        """How many (constraint, witness) re-evaluations have run —
        the work metric full revalidation would dwarf."""
        return self._rechecks

    # -- updates -----------------------------------------------------------

    def add_edge(self, src: Node, label: str, dst: Node) -> None:
        """Insert the edge into the underlying graph and update."""
        self._graph.add_edge(src, label, dst)
        self.notify_edge(src, label, dst)

    def notify_edge(self, src: Node, label: str, dst: Node) -> None:
        """Update after an edge was inserted externally."""
        for constraint in self._by_label.get(label, ()):  # affected only
            self._update_constraint(constraint, src, dst, label)

    def _update_constraint(
        self, constraint: PathConstraint, src: Node, dst: Node, label: str
    ) -> None:
        graph = self._graph
        evaluator = graph.path_cache
        pairs = self._violations[constraint]

        def conclusion_holds(x: Node, y: Node) -> bool:
            # One cached image per witness x, probed by membership:
            # forward uses {y : gamma(x, y)}, backward {y : gamma(y, x)}.
            if constraint.is_forward():
                return y in evaluator.eval_path(constraint.rhs, start=x)
            return y in evaluator.eval_path_backward(constraint.rhs, x)

        # 1. Repairs: the new edge can complete conclusion paths.
        if label in constraint.rhs.alphabet() and pairs:
            for x, y in list(pairs):
                self._rechecks += 1
                if conclusion_holds(x, y):
                    pairs.discard((x, y))

        # 2. New violations: only witness pairs whose alpha/beta paths
        #    can traverse the new edge.
        touched = (
            label in constraint.prefix.alphabet()
            or label in constraint.lhs.alphabet()
        )
        if not touched:
            return
        for x, y in _pairs_through_edge(graph, constraint, src, dst, label):
            self._rechecks += 1
            if conclusion_holds(x, y):
                pairs.discard((x, y))
            else:
                pairs.add((x, y))

    # -- verification ---------------------------------------------------------

    def revalidate(self) -> bool:
        """Recompute everything from scratch and compare (used by the
        tests to prove equivalence; also handy after bulk mutations
        made without notifications)."""
        fresh = {
            constraint: set(violations(self._graph, constraint))
            for constraint in self._constraints
        }
        matches = fresh == self._violations
        self._violations = fresh
        return matches
