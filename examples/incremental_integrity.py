"""Incremental integrity maintenance on a growing bibliography.

Streams 500 books and their authorship edges into a database while an
:class:`~repro.checking.IncrementalChecker` maintains the violation
set of the Section 1 constraints after every insertion — the
constraint-checking workload the paper motivates, made cheap.

Run:  python examples/incremental_integrity.py
"""

import random
import time

from repro.checking import IncrementalChecker, check_all
from repro.constraints import parse_constraints
from repro.graph import Graph

SIGMA = parse_constraints(
    """
    book :: author ~> wrote
    person :: wrote ~> author
    book.author => person
    person.wrote => book
    """
)


def stream_edges(books: int, persons: int, seed: int = 0):
    """Insertion trace: persons first, then books with authorship —
    inverse edges arrive *late* (after a few other operations), so
    violations open and close as the stream progresses."""
    rng = random.Random(seed)
    person_ids = [f"p{i}" for i in range(persons)]
    for p in person_ids:
        yield ("r", "person", p)
    pending = []
    for i in range(books):
        b = f"b{i}"
        yield ("r", "book", b)
        for p in rng.sample(person_ids, k=rng.randint(1, 3)):
            yield (b, "author", p)
            pending.append((p, "wrote", b))
            if len(pending) > 5:
                yield pending.pop(0)
    yield from pending


def main() -> None:
    graph = Graph(root="r")
    checker = IncrementalChecker(graph, SIGMA)

    max_open = 0
    start = time.perf_counter()
    edges = 0
    for src, label, dst in stream_edges(books=500, persons=150):
        checker.add_edge(src, label, dst)
        open_now = sum(len(v) for v in checker.current_violations().values())
        max_open = max(max_open, open_now)
        edges += 1
    incremental_time = time.perf_counter() - start

    print(f"streamed {edges} edges; "
          f"max {max_open} violations open at once; "
          f"final state consistent: {checker.ok}")
    print(f"incremental maintenance: {incremental_time * 1e3:.1f} ms total "
          f"({checker.recheck_count} witness rechecks)")

    # Compare with naive revalidation after every insert.
    graph2 = Graph(root="r")
    start = time.perf_counter()
    naive_checks = 0
    for src, label, dst in stream_edges(books=500, persons=150):
        graph2.add_edge(src, label, dst)
        report = check_all(graph2, SIGMA)
        naive_checks += report.total_witnesses
    naive_time = time.perf_counter() - start
    print(f"naive re-validation:     {naive_time * 1e3:.1f} ms total "
          f"({naive_checks} witness checks)")
    print(f"speedup: x{naive_time / incremental_time:.1f}")

    # Sanity: the incremental state equals a fresh batch run.
    assert checker.revalidate()
    print("incremental state verified against batch revalidation.")


if __name__ == "__main__":
    main()
