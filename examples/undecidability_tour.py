"""Types can hurt: a guided tour of the undecidability reductions.

Walks Theorem 4.3 (the word problem for monoids inside P_w(K)
implication on untyped data) and Theorem 5.2 (the same problem inside
*typed* local-extent implication over Delta_1), building and verifying
the paper's Figure 2 and Figure 4 gadgets along the way.

Run:  python examples/undecidability_tour.py
"""

from repro.graph.serialize import to_dot
from repro.monoids import MonoidPresentation, decide_word_problem
from repro.monoids.finite import find_separating_homomorphism
from repro.reasoning import implies_local_extent
from repro.reasoning.chase import chase_implication
from repro.reductions import (
    encode_mplus,
    encode_pwk,
    figure2_structure,
    figure4_structure,
)
from repro.types.typecheck import check_type_constraint


def main() -> None:
    # A finitely presented monoid: the free commutative monoid on u, v.
    pres = MonoidPresentation("uv", [("u.v", "v.u")])
    print(f"Presentation: {pres!r}")

    for alpha, beta in [("u.v.u", "u.u.v"), ("u.v", "v.v")]:
        verdict = decide_word_problem(pres, alpha, beta)
        print(f"  word problem {alpha} =?= {beta}: {verdict.answer.value} "
              f"(via {verdict.method})")

    # --- Theorem 4.3: encode into P_w(K) over untyped data ------------
    enc = encode_pwk(pres)
    print("\nTheorem 4.3 encoding (Sigma in P_w(K)):")
    for phi in enc.sigma:
        print(f"  {phi}")

    # Equal pair: the chase confirms the encoded implication.
    phi_ab, phi_ba = enc.test_constraints("u.v.u", "u.u.v")
    result = chase_implication(list(enc.sigma), phi_ab, max_steps=3000)
    print(f"\nencoded |= {phi_ab}: {result.answer.value} (chase)")

    # Unequal pair: a finite monoid separates, and Figure 2 turns the
    # separation into a concrete counter-model graph.
    hom = find_separating_homomorphism(pres, "u.v", "v.v")
    print(f"\nseparating homomorphism: u -> {hom.images['u']}, "
          f"v -> {hom.images['v']} in a monoid of order {hom.monoid.order}")
    gadget = figure2_structure(pres, hom)
    print(f"Figure 2 counter-model: {gadget.node_count()} nodes; "
          f"verified: {enc.verify_countermodel(gadget, 'u.v', 'v.v')}")
    print("\nDOT rendering of the gadget:")
    print(to_dot(gadget, name="Figure2"))

    # --- Theorem 5.2: the same monoid inside typed local extent -------
    enc2 = encode_mplus(pres)
    print("Theorem 5.2 encoding over Delta_1 (prefix bounded by l, K):")
    for phi in enc2.sigma:
        print(f"  {phi}")

    phi = enc2.test_constraint("u.v", "v.u")  # equal in the monoid!
    untyped = implies_local_extent(
        list(enc2.sigma), phi, rho=enc2.rho, guard=enc2.guard
    )
    print(f"\nuntyped local-extent decision for {phi}:"
          f" {untyped.answer.value}   <- Sigma_r provably ignored")
    print("typed truth over Delta_1: IMPLIED (the type constraint forces")
    print("the Figure 4 shape, where the equation constraints bite) —")
    print("which is exactly why the typed problem is undecidable.")

    gadget4 = figure4_structure(pres, hom)
    typing = check_type_constraint(enc2.schema, gadget4)
    print(f"\nFigure 4 gadget for the unequal pair (u.v, v.v): "
          f"{gadget4.node_count()} nodes, "
          f"in U_f(Delta_1): {typing.ok}, counter-model verified: "
          f"{enc2.verify_countermodel(gadget4, 'u.v', 'v.v')}")


if __name__ == "__main__":
    main()
