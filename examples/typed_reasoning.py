"""Types can help: P_c implication over the model M (Theorem 4.2).

Feature-structure flavoured demo of the typed decider: the same
premise set answers differently untyped vs over an M schema, every
positive answer carries a machine-checkable I_r proof, and the
equivalent-path enumeration powers a small "smart navigation" trick.

Run:  python examples/typed_reasoning.py
"""

from repro.constraints import parse_constraint, parse_constraints
from repro.reasoning import TypedImplicationDecider, WordImplicationDecider
from repro.reasoning.axioms import check_proof
from repro.types.examples import feature_structure_schema


def main() -> None:
    schema = feature_structure_schema()
    print("Schema (model M):")
    for name, body in sorted(schema.classes.items()):
        print(f"  {name} -> {body!r}")
    print(f"  DBtype = {schema.db_type!r}")

    # Premise: the sentence's head is the subject (an agreement-style
    # structure-sharing constraint, as in feature logics).
    sigma = parse_constraints("sentence.head => subject")
    typed = TypedImplicationDecider(schema, sigma)
    untyped = WordImplicationDecider(sigma)

    questions = [
        "subject => sentence.head",
        "sentence.head.agreement => subject.agreement",
        "subject.agreement.number => sentence.head.agreement.number",
        "sentence => subject",
    ]
    print("\nquery" + " " * 50 + "untyped   over M")
    for text in questions:
        phi = parse_constraint(text)
        print(f"  {text:52}  {str(untyped.implies(phi)):7}  "
              f"{typed.implies(phi)}")

    # Every positive typed answer has an I_r proof; verify one by hand.
    phi = parse_constraint("subject => sentence.head")
    proof = typed.prove(phi)
    assert proof is not None
    conclusion = check_proof(proof)  # independent checker
    print(f"\nI_r proof of {conclusion} "
          f"({len(proof.lines)} lines, rules: {sorted(proof.rules_used())}):")
    print(proof.describe())

    # Equivalent paths: every way to reach the same node in all models.
    print("\nPaths provably equivalent to 'subject.agreement':")
    for path in typed.equivalent_paths("subject.agreement", max_length=3):
        print(f"  {path}")


if __name__ == "__main__":
    main()
