"""An XML bibliography, end to end.

Parses an XML document (with id/idref cross-links), turns it into a
sigma-structure, validates the Section 1 integrity constraints,
repairs a violation with the chase, and then imposes the paper's
XML-Data schema to get the typed view of Example 3.1.

Run:  python examples/xml_bibliography.py
"""

from repro.checking import check_all
from repro.constraints import parse_constraints
from repro.reasoning.chase import chase
from repro.types.siggen import SchemaSignature
from repro.xml import document_to_graph, parse_xml, schema_from_xml_data

DOCUMENT = """
<bib>
  <book id="b1" author="p1" ref="b2">
    <title>Foundations of Databases</title><ISBN>0-201-53771-0</ISBN>
  </book>
  <book id="b2" author="p1 p2">
    <title>Data on the Web</title><ISBN>1-55860-622-X</ISBN>
  </book>
  <book id="b3" author="p2">
    <title>Semistructured Surprises</title><ISBN>0-00-000000-0</ISBN>
  </book>
  <person id="p1" wrote="b1 b2"><name>Serge</name></person>
  <person id="p2" wrote="b2"><name>Dan</name></person>
</bib>
"""

XML_DATA = """
<schema>
  <elementType id="book">
    <attribute name="author" range="#person"/>
    <attribute name="ref" range="#book"/>
    <element type="#title"/>
    <element type="#ISBN"/>
    <element type="#year" occurs="optional"/>
  </elementType>
  <elementType id="person">
    <attribute name="wrote" range="#book"/>
    <element type="#name"/>
  </elementType>
  <elementType id="title"><string/></elementType>
  <elementType id="ISBN"><string/></elementType>
  <elementType id="year"><int/></elementType>
  <elementType id="name"><string/></elementType>
</schema>
"""


def main() -> None:
    # 1. Parse and graphize (idrefs become cross edges, as in Figure 1).
    graph = document_to_graph(
        parse_xml(DOCUMENT), reference_attributes={"author", "ref", "wrote"}
    )
    print(f"Document graph: {graph.node_count()} nodes, "
          f"{graph.edge_count()} edges")

    # 2. Integrity constraints.  Note the deliberate bug in the data:
    #    b3 lists p2 as author, but p2's `wrote` omits b3.
    sigma = parse_constraints(
        """
        book :: author ~> wrote
        person :: wrote ~> author
        book.author => person
        person.wrote => book
        book.ref => book
        """
    )
    report = check_all(graph, sigma)
    print(f"\nValidation:\n{report.summary()}")

    # 3. Repair with the chase: the missing inverse edges are added.
    outcome = chase(graph, sigma, max_steps=1000)
    print(f"\nChase repair: {outcome.steps} step(s), "
          f"fixpoint={outcome.fixpoint}")
    print(f"Re-validation: {check_all(outcome.graph, sigma).summary()}")

    # 4. The typed view: the paper's XML-Data declarations as an M+
    #    schema (Example 3.1), with its derived signature.
    schema = schema_from_xml_data(XML_DATA)
    signature = SchemaSignature(schema)
    print(f"\nXML-Data import: classes {sorted(schema.class_names)}")
    print(f"E(Delta) = {sorted(signature.edge_labels)}")
    print(f"T(Delta) = {sorted(signature.type_names)}")
    print("sample Paths(Delta):",
          ", ".join(str(p) for p in list(signature.sample_paths(3))[:8]))


if __name__ == "__main__":
    main()
