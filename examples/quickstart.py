"""Quickstart: graphs, path constraints, checking and implication.

Builds the paper's Figure 1 bibliography graph, states the Section 1
constraints in the line syntax, checks them, and asks the implication
questions of Section 2.2.

Run:  python examples/quickstart.py
"""

from repro import figure1_graph, parse_constraint, parse_constraints
from repro.checking import check_all
from repro.reasoning import ImplicationProblem, solve


def main() -> None:
    # 1. A semistructured database: rooted, edge-labeled, directed graph.
    graph = figure1_graph()
    print(f"Figure 1 graph: {graph.node_count()} nodes, "
          f"{graph.edge_count()} edges")
    print(f"  books:   {sorted(map(str, graph.eval_path('book')))}")
    print(f"  persons: {sorted(map(str, graph.eval_path('person')))}")

    # 2. The Section 1 constraints: inverse (backward, `~>`) and extent
    #    (word, `=>`) constraints.
    sigma = parse_constraints(
        """
        book :: author ~> wrote      # inverse: author and wrote mirror
        person :: wrote ~> author
        book.author => person        # extent: authors are persons
        person.wrote => book
        book.ref => book
        """
    )
    report = check_all(graph, sigma)
    print(f"\nIntegrity check: {report.summary()}")

    # 3. Implication: what follows from the extent constraints?
    premises = [phi for phi in sigma if phi.is_word_constraint()]
    for question in [
        "book.author.wrote => book",          # yes: compose two extents
        "book.ref.ref.author => person",      # yes: ref-chains collapse
        "book.author => book",                # no
    ]:
        phi = parse_constraint(question)
        result = solve(ImplicationProblem(premises, phi))
        print(f"  Sigma |= {question!r:40}  ->  {result.answer.value} "
              f"({result.complexity})")

    # 4. A violation, caught with witnesses.
    graph.add_edge("book1", "author", "anonymous")
    bad = check_all(graph, sigma)
    print(f"\nAfter adding an unmatched author edge:\n{bad.summary()}")


if __name__ == "__main__":
    main()
