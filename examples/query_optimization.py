"""Query optimization with path constraints (the Section 2.2 motivation).

On a large bibliography graph that satisfies the extent/inverse
constraints, a union-of-paths query is optimized by (a) pruning
branches whose answers are provably contained in another branch's and
(b) rewriting branches to provably equivalent shorter paths — then
both plans are executed and timed.

Run:  python examples/query_optimization.py
"""

import time

from repro.constraints import parse_constraints
from repro.graph.builders import scaled_bibliography
from repro.query import WordQueryOptimizer, evaluate_word
from repro.reasoning.chase import chase

CONSTRAINTS = parse_constraints(
    """
    book.author => person
    person.wrote => book
    book.ref => book
    """
)

QUERY = [
    "book.author",               # subsumed by person
    "person",
    "book.ref.author",           # subsumed by person too
    "book.author.wrote.author",  # and this one
    "book.ref.ref",              # subsumed by... nothing in the union
]


def run_union(graph, branches):
    answers = set()
    cost = 0
    for branch in branches:
        result = evaluate_word(graph, str(branch))
        answers |= result.answers
        cost += result.edges_traversed
    return frozenset(answers), cost


def main() -> None:
    print("Building a 2000-book bibliography and repairing it to satisfy "
          "the constraints...")
    graph = scaled_bibliography(2000, 800, seed=7)
    graph = chase(graph, CONSTRAINTS, max_steps=1_000_000).graph
    print(f"graph: {graph.node_count()} nodes, {graph.edge_count()} edges")

    optimizer = WordQueryOptimizer(CONSTRAINTS)
    report = optimizer.optimize_union(QUERY)

    print("\nOptimizer decisions:")
    for dropped, by in report.pruned:
        print(f"  prune   {str(dropped):28} (answers within {by})")
    for before, after in report.rewrites:
        print(f"  rewrite {str(before):28} -> {after}")
    print(f"  final plan: {[str(p) for p in report.optimized]}")

    start = time.perf_counter()
    plain_answers, plain_cost = run_union(graph, QUERY)
    plain_time = time.perf_counter() - start

    start = time.perf_counter()
    fast_answers, fast_cost = run_union(graph, report.optimized)
    fast_time = time.perf_counter() - start

    assert plain_answers == fast_answers, "optimization changed answers!"
    print(f"\nplain plan:     {len(QUERY)} branches, "
          f"{plain_cost} edges traversed, {plain_time * 1e3:.2f} ms")
    print(f"optimized plan: {len(report.optimized)} branches, "
          f"{fast_cost} edges traversed, {fast_time * 1e3:.2f} ms")
    print(f"identical answers: {len(plain_answers)} nodes; "
          f"speedup x{plain_time / max(fast_time, 1e-9):.1f}")


if __name__ == "__main__":
    main()
